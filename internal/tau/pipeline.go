package tau

import (
	"fmt"
	"strings"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/interp"
)

// Result is the outcome of a full instrument-and-profile run.
type Result struct {
	ExitCode     int
	Output       string
	Runtime      *Runtime
	PDB          *ductape.PDB
	Instrumented map[string]string
}

// ProfileSource runs the complete TAU pipeline of the paper's §4.1 on
// in-memory sources: parse to a PDB, instrument the source using the
// PDB, recompile the translated source, execute it on the interpreter,
// and collect run-time statistics.
func ProfileSource(files map[string]string, mainFile string, mode ClockMode) (*Result, error) {
	return ProfileSourceTo(files, mainFile, mode, nil)
}

// ProfileSourceTo is ProfileSource with a streaming sink attached to
// the measurement runtime before execution: timer samples and call
// edges flow to the sink as the program runs (taurun -stream), in
// addition to the one-shot report collected in the Result.
func ProfileSourceTo(files map[string]string, mainFile string, mode ClockMode, sink Sink) (*Result, error) {
	// Phase 1: compile the original source and build its PDB.
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, mainFile, files[mainFile], opts)
	if res.HasErrors() {
		return nil, fmt.Errorf("frontend: %v", res.Diagnostics[0])
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))

	// Phase 2: the instrumentor rewrites the original source files,
	// annotating functions with TAU measurement macros.
	instrumented, err := Instrument(fs, db)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}

	// Phase 3: compile the translated source (the "compile and link
	// with the TAU library" step).
	fs2 := core.NewFileSet(opts)
	for name, content := range files {
		if newContent, ok := instrumented[name]; ok {
			fs2.AddVirtualFile(name, newContent)
		} else {
			fs2.AddVirtualFile(name, content)
		}
	}
	mainSrc := files[mainFile]
	if newContent, ok := instrumented[mainFile]; ok {
		mainSrc = newContent
	}
	res2 := core.CompileSource(fs2, mainFile, mainSrc, opts)
	if res2.HasErrors() {
		return nil, fmt.Errorf("instrumented frontend: %v", res2.Diagnostics[0])
	}

	// Phase 4: run, collecting statistics.
	var out strings.Builder
	in := interp.New(res2.Unit, interp.Options{Out: &out})
	rt := Install(in, mode)
	if sink != nil {
		rt.SetSink(sink)
	}
	code, err := in.Run()
	if err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	return &Result{
		ExitCode:     code,
		Output:       out.String(),
		Runtime:      rt,
		PDB:          db,
		Instrumented: instrumented,
	}, nil
}
