package tau

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport prints the flat profile in the style of the paper's
// Figure 7 text display: percentage of total time, exclusive and
// inclusive counts, call counts, and the timer name (which carries the
// template instantiation type from CT).
func WriteReport(w io.Writer, rt *Runtime) {
	total := rt.TotalTime()
	unit := rt.Unit()
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	fmt.Fprintf(w, "%6s %12s %12s %10s  %s\n", "%Time", "Exclusive", "Inclusive", "#Calls", "Name")
	fmt.Fprintf(w, "%6s %12s %12s %10s\n", "", unit, unit, "")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	for _, p := range rt.Profiles() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.Exclusive) / float64(total)
		}
		fmt.Fprintf(w, "%6.1f %12d %12d %10d  %s\n",
			pct, p.Exclusive, p.Inclusive, p.Calls, p.Name)
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
}

// WriteBars prints the overview display of Figure 7's left panel: one
// horizontal bar per timer, scaled to the largest exclusive time.
func WriteBars(w io.Writer, rt *Runtime, width int) {
	if width <= 0 {
		width = 40
	}
	profs := rt.Profiles()
	var max uint64
	for _, p := range profs {
		if p.Exclusive > max {
			max = p.Exclusive
		}
	}
	total := rt.TotalTime()
	for _, p := range profs {
		n := 0
		if max > 0 {
			n = int(uint64(width) * p.Exclusive / max)
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.Exclusive) / float64(total)
		}
		fmt.Fprintf(w, "%-*s %5.1f%%  %s\n", width, strings.Repeat("#", n), pct, p.Name)
	}
}
