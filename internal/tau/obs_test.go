package tau

import (
	"testing"

	"pdt/internal/obs"
)

// TestExportObs: TAU profile data must surface through the shared obs
// exporter — a "tau" span whose children carry each timer's exclusive
// time and call count, keyed by the CT-decorated timer name.
func TestExportObs(t *testing.T) {
	rt := &Runtime{mode: VirtualClock, data: map[string]*Profile{
		"push() Stack<int>":    {Name: "push() Stack<int>", Calls: 24, Inclusive: 120, Exclusive: 80},
		"push() Stack<double>": {Name: "push() Stack<double>", Calls: 8, Inclusive: 60, Exclusive: 60},
	}}
	m := obs.New("taurun")
	rt.ExportObs(m)

	snap := m.Snapshot()
	sp := snap.Find("tau")
	if sp == nil {
		t.Fatal("no tau span")
	}
	if sp.Items != 2 || len(sp.Children) != 2 {
		t.Fatalf("tau span = %d items, %d children, want 2/2", sp.Items, len(sp.Children))
	}
	if sp.DurNS != int64(rt.TotalTime()) {
		t.Errorf("tau span dur = %d, want total %d", sp.DurNS, rt.TotalTime())
	}
	intProf := snap.Find("push() Stack<int>")
	if intProf == nil || intProf.Items != 24 || intProf.DurNS != 80 {
		t.Errorf("Stack<int> timer = %+v, want 24 calls / 80 excl", intProf)
	}
	// Profiles sort by exclusive time descending, so the int
	// instantiation leads.
	if sp.Children[0].Name != "push() Stack<int>" {
		t.Errorf("first child = %q, want the hottest timer", sp.Children[0].Name)
	}
	if snap.Counters["tau.calls"] != 32 {
		t.Errorf("tau.calls = %d, want 32", snap.Counters["tau.calls"])
	}
	if snap.Gauges["tau.unit.nanoseconds"] != 0 {
		t.Error("virtual clock should export unit gauge 0")
	}

	// Nil registry and nil runtime are both no-ops.
	rt.ExportObs(nil)
	var nilRT *Runtime
	nilRT.ExportObs(m)
}
