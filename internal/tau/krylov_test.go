package tau_test

import (
	"strings"
	"testing"

	"pdt/internal/tau"
	"pdt/internal/workload"
)

// TestKrylovProfile is experiment E8 (Figure 7): TAU automatically
// instruments the Krylov solver via PDT, runs it, and the resulting
// profile has the paper's qualitative shape.
func TestKrylovProfile(t *testing.T) {
	res, err := tau.ProfileSource(workload.KrylovFiles(), "krylov.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	// The solver still behaves: CG converges in <= n iterations.
	if !strings.Contains(res.Output, "converged 1") {
		t.Fatalf("solver did not converge under instrumentation:\n%s", res.Output)
	}
	rt := res.Runtime

	get := func(name string) uint64 {
		p := rt.Lookup(name)
		if p == nil {
			var names []string
			for _, pp := range rt.Profiles() {
				names = append(names, pp.Name)
			}
			t.Fatalf("profile %q missing; have %v", name, names)
		}
		return p.Exclusive
	}

	// Every solver kernel is profiled.
	axpy := get("axpy()")
	dot := get("dot()")
	lap := get("applyLaplacian()")
	cg := rt.Lookup("conjugateGradient()")
	mainP := rt.Lookup("main()")
	if cg == nil || mainP == nil {
		t.Fatal("driver profiles missing")
	}

	// Shape 1: the kernels dominate exclusive time.
	total := rt.TotalTime()
	kernels := axpy + dot + lap
	if kernels*2 < total {
		t.Errorf("kernels are only %d of %d exclusive steps (want majority)", kernels, total)
	}
	// Shape 2: the solver driver is almost pure inclusive time.
	if cg.Exclusive*10 > cg.Inclusive {
		t.Errorf("conjugateGradient excl=%d incl=%d (driver should be thin)", cg.Exclusive, cg.Inclusive)
	}
	// Shape 3: main's inclusive time covers everything measured.
	if mainP.Inclusive < kernels {
		t.Errorf("main inclusive %d < kernel total %d", mainP.Inclusive, kernels)
	}
	// Shape 4: the template instantiation appears under its RTTI name.
	if rt.Lookup("Vector::get() Vector<double>") == nil {
		t.Error("per-instantiation profile (CT name) missing")
	}
	// Shape 5: call counts are exact and deterministic. 16 CG
	// iterations: applyLaplacian runs 16 + 2 (init + residual check);
	// axpy twice per iteration; dot twice per iteration + once at init.
	if p := rt.Lookup("applyLaplacian()"); p.Calls != 18 {
		t.Errorf("applyLaplacian calls = %d, want 18", p.Calls)
	}
	if p := rt.Lookup("axpy()"); p.Calls != 32 {
		t.Errorf("axpy calls = %d, want 32", p.Calls)
	}
	if p := rt.Lookup("dot()"); p.Calls != 33 {
		t.Errorf("dot calls = %d, want 33", p.Calls)
	}
}

// TestInstrumentMultiFile verifies the instrumentor edits every file
// that contains routine bodies — headers included — and the
// recompiled multi-file program still runs.
func TestInstrumentMultiFile(t *testing.T) {
	res, err := tau.ProfileSource(workload.KrylovFiles(), "krylov.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	// pooma.h (kernels) and krylov.h (solver) and krylov.cpp (main)
	// all carry bodies and must all be instrumented.
	for _, f := range []string{"pooma.h", "krylov.h", "krylov.cpp"} {
		content, ok := res.Instrumented[f]
		if !ok {
			t.Errorf("%s not instrumented", f)
			continue
		}
		if !strings.HasPrefix(content, "#include <tau.h>") {
			t.Errorf("%s missing tau.h include", f)
		}
		if !strings.Contains(content, "TAU_PROFILE(") {
			t.Errorf("%s has no TAU_PROFILE insertions", f)
		}
	}
	// Member templates in pooma.h carry CT(*this); the free kernel
	// templates do not.
	pooma := res.Instrumented["pooma.h"]
	if !strings.Contains(pooma, `TAU_PROFILE("Vector::get()", CT(*this), TAU_USER)`) {
		t.Error("Vector::get missing CT(*this) instrumentation")
	}
	if !strings.Contains(pooma, `TAU_PROFILE("dot()", "", TAU_USER)`) {
		t.Error("dot missing plain instrumentation")
	}
}

// TestStackFigure1Profile instruments and runs the paper's Figure 1
// program: output is unchanged and every Stack<int> member appears in
// the profile with its instantiation type.
func TestStackFigure1Profile(t *testing.T) {
	res, err := tau.ProfileSource(workload.StackFiles(), "TestStackAr.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "9\n8\n7\n6\n5\n4\n3\n2\n1\n0\n" {
		t.Errorf("instrumentation changed behaviour: %q", res.Output)
	}
	push := res.Runtime.Lookup("Stack::push() Stack<int>")
	if push == nil || push.Calls != 10 {
		var names []string
		for _, p := range res.Runtime.Profiles() {
			names = append(names, p.Name)
		}
		t.Fatalf("push profile wrong (%+v); have %v", push, names)
	}
	pop := res.Runtime.Lookup("Stack::topAndPop() Stack<int>")
	if pop == nil || pop.Calls != 10 {
		t.Errorf("topAndPop profile = %+v", pop)
	}
}

// TestCallPathProfile checks the caller→callee breakdown: the
// conjugateGradient driver is the parent of the kernel timers, and the
// kernels are the parents of the Vector accessors.
func TestCallPathProfile(t *testing.T) {
	res, err := tau.ProfileSource(workload.KrylovFiles(), "krylov.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Runtime
	hasEdge := func(parent, child string) bool {
		for _, e := range rt.EdgesFrom(parent) {
			if e.Child == child {
				return true
			}
		}
		return false
	}
	for _, want := range [][2]string{
		{"<root>", "main()"},
		{"main()", "conjugateGradient()"},
		{"conjugateGradient()", "axpy()"},
		{"conjugateGradient()", "dot()"},
		{"conjugateGradient()", "applyLaplacian()"},
		{"axpy()", "Vector::get() Vector<double>"},
		{"dot()", "Vector::get() Vector<double>"},
	} {
		if !hasEdge(want[0], want[1]) {
			var all []string
			for _, e := range rt.Edges() {
				all = append(all, e.Parent+" => "+e.Child)
			}
			t.Errorf("missing call path %s => %s; have:\n%s",
				want[0], want[1], strings.Join(all, "\n"))
		}
	}
	// axpy is called from CG 32 times; the edge must agree with the
	// flat profile's call count.
	for _, e := range rt.EdgesFrom("conjugateGradient()") {
		if e.Child == "axpy()" && e.Calls != 32 {
			t.Errorf("CG=>axpy calls = %d, want 32", e.Calls)
		}
	}
	var sb strings.Builder
	tau.WriteCallPaths(&sb, rt)
	if !strings.Contains(sb.String(), "=> axpy()") {
		t.Errorf("call-path report:\n%s", sb.String())
	}
}
