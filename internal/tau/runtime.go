// Package tau is the TAU (Tuning and Analysis Utilities) analog of the
// paper's §4.1: PDB-driven automatic source instrumentation of C++
// code, a measurement runtime of scoped timers, and profile reports in
// the style of Figure 7.
//
// The instrumentor rewrites source files, annotating functions with
// TAU measurement macros (TAU_PROFILE). The translated source is then
// recompiled and run on the PDT interpreter, whose intrinsics for the
// TauProfiler constructor/destructor drive this runtime. Run-time type
// information for template instantiations comes from the CT(obj) macro
// (__pdt_typename), so each unique instantiation is profiled under its
// own name — the paper's central template-profiling technique.
package tau

import (
	"fmt"
	"sort"
	"time"

	"pdt/internal/interp"
)

// ClockMode selects the time source.
type ClockMode int

const (
	// VirtualClock uses the interpreter's deterministic step counter
	// (the default: profiles are exactly reproducible).
	VirtualClock ClockMode = iota
	// WallClock uses real time in nanoseconds.
	WallClock
)

// Profile accumulates measurements for one timer name.
type Profile struct {
	Name      string
	Calls     uint64
	Inclusive uint64
	Exclusive uint64
}

type frame struct {
	name      string
	start     uint64
	childTime uint64
}

// Runtime collects profile data for one program run.
type Runtime struct {
	in    *interp.Interp
	mode  ClockMode
	stack []frame
	data  map[string]*Profile
	edges map[edgeKey]*Edge
	t0    time.Time
}

// Install attaches a fresh runtime to an interpreter: the TauProfiler
// constructor/destructor intrinsics are registered so TAU_PROFILE
// macros in the instrumented source drive the timers.
func Install(in *interp.Interp, mode ClockMode) *Runtime {
	rt := &Runtime{in: in, mode: mode, data: map[string]*Profile{}, t0: time.Now()}

	in.RegisterIntrinsic("TauProfiler::TauProfiler",
		func(_ *interp.Interp, this *interp.Object, args []interp.Value) (interp.Value, error) {
			name, typ := "unnamed", ""
			if len(args) > 0 {
				name = interp.FormatValue(args[0])
			}
			if len(args) > 1 {
				typ = interp.FormatValue(args[1])
			}
			rt.Start(timerName(name, typ))
			return this, nil
		})
	in.RegisterIntrinsic("TauProfiler::~TauProfiler",
		func(_ *interp.Interp, this *interp.Object, args []interp.Value) (interp.Value, error) {
			rt.Stop()
			return this, nil
		})
	return rt
}

// timerName renders the display name: the static name plus the
// run-time type of the object (for member templates), e.g.
// "push() Stack<int>".
func timerName(name, typ string) string {
	if typ == "" || typ == "void" {
		return name
	}
	return name + " " + typ
}

func (rt *Runtime) now() uint64 {
	if rt.mode == WallClock {
		return uint64(time.Since(rt.t0).Nanoseconds())
	}
	return rt.in.Clock()
}

// Start opens a timer scope.
func (rt *Runtime) Start(name string) {
	rt.stack = append(rt.stack, frame{name: name, start: rt.now()})
}

// Stop closes the innermost timer scope and accumulates its times.
func (rt *Runtime) Stop() {
	if len(rt.stack) == 0 {
		return
	}
	f := rt.stack[len(rt.stack)-1]
	rt.stack = rt.stack[:len(rt.stack)-1]
	incl := rt.now() - f.start
	excl := incl
	if f.childTime < excl {
		excl -= f.childTime
	} else {
		excl = 0
	}
	p := rt.data[f.name]
	if p == nil {
		p = &Profile{Name: f.name}
		rt.data[f.name] = p
	}
	p.Calls++
	p.Inclusive += incl
	p.Exclusive += excl
	if len(rt.stack) > 0 {
		parent := &rt.stack[len(rt.stack)-1]
		parent.childTime += incl
		rt.recordEdge(parent.name, f.name, incl)
	} else {
		rt.recordEdge("<root>", f.name, incl)
	}
}

// Profiles returns the flat profile sorted by exclusive time
// (descending), name-tiebroken for determinism.
func (rt *Runtime) Profiles() []*Profile {
	out := make([]*Profile, 0, len(rt.data))
	for _, p := range rt.data {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Lookup returns the profile for a timer name, or nil.
func (rt *Runtime) Lookup(name string) *Profile { return rt.data[name] }

// TotalTime returns the sum of exclusive times (= total profiled time).
func (rt *Runtime) TotalTime() uint64 {
	var total uint64
	for _, p := range rt.data {
		total += p.Exclusive
	}
	return total
}

// Depth returns the current timer nesting (for tests).
func (rt *Runtime) Depth() int { return len(rt.stack) }

// Unit returns the clock unit label for reports.
func (rt *Runtime) Unit() string {
	if rt.mode == WallClock {
		return "nsec"
	}
	return "steps"
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s: %d calls, incl %d, excl %d", p.Name, p.Calls, p.Inclusive, p.Exclusive)
}
