// Package tau is the TAU (Tuning and Analysis Utilities) analog of the
// paper's §4.1: PDB-driven automatic source instrumentation of C++
// code, a measurement runtime of scoped timers, and profile reports in
// the style of Figure 7.
//
// The instrumentor rewrites source files, annotating functions with
// TAU measurement macros (TAU_PROFILE). The translated source is then
// recompiled and run on the PDT interpreter, whose intrinsics for the
// TauProfiler constructor/destructor drive this runtime. Run-time type
// information for template instantiations comes from the CT(obj) macro
// (__pdt_typename), so each unique instantiation is profiled under its
// own name — the paper's central template-profiling technique.
package tau

import (
	"fmt"
	"sort"
	"time"

	"pdt/internal/interp"
)

// ClockMode selects the time source.
type ClockMode int

const (
	// VirtualClock uses the interpreter's deterministic step counter
	// (the default: profiles are exactly reproducible).
	VirtualClock ClockMode = iota
	// WallClock uses real time in nanoseconds.
	WallClock
)

// Profile accumulates measurements for one timer name.
type Profile struct {
	Name      string
	Calls     uint64
	Inclusive uint64
	Exclusive uint64
}

type frame struct {
	name      string
	start     uint64
	childTime uint64
}

// Sink receives profile events as the instrumented program produces
// them: one Sample per completed timer scope and one Edge per
// parent→child relationship observed. A sink must never block — the
// streaming client (internal/taustream) buffers and drops under
// pressure rather than stalling the profiled program.
type Sink interface {
	// Sample reports a completed timer scope.
	Sample(name string, calls, incl, excl uint64)
	// Edge reports a parent→child timer relationship ("<root>" is the
	// parent of top-level scopes).
	Edge(parent, child string, calls, incl uint64)
}

// Runtime collects profile data for one program run.
type Runtime struct {
	in    *interp.Interp
	mode  ClockMode
	stack []frame
	data  map[string]*Profile
	edges map[edgeKey]*Edge
	t0    time.Time
	steps uint64 // standalone virtual clock (no interpreter attached)
	sink  Sink
}

// NewRuntime builds a runtime that is driven directly through
// Start/Stop rather than by interpreter intrinsics. With VirtualClock
// and no interpreter attached, the clock advances one step per
// reading, so profiles are deterministic.
func NewRuntime(mode ClockMode) *Runtime {
	return &Runtime{mode: mode, data: map[string]*Profile{}, t0: time.Now()}
}

// SetSink attaches a streaming sink: every subsequent completed timer
// scope is forwarded as it closes, in addition to being accumulated in
// the runtime's own tables. A nil sink detaches.
func (rt *Runtime) SetSink(s Sink) { rt.sink = s }

// Install attaches a fresh runtime to an interpreter: the TauProfiler
// constructor/destructor intrinsics are registered so TAU_PROFILE
// macros in the instrumented source drive the timers.
func Install(in *interp.Interp, mode ClockMode) *Runtime {
	rt := &Runtime{in: in, mode: mode, data: map[string]*Profile{}, t0: time.Now()}

	in.RegisterIntrinsic("TauProfiler::TauProfiler",
		func(_ *interp.Interp, this *interp.Object, args []interp.Value) (interp.Value, error) {
			name, typ := "unnamed", ""
			if len(args) > 0 {
				name = interp.FormatValue(args[0])
			}
			if len(args) > 1 {
				typ = interp.FormatValue(args[1])
			}
			rt.Start(timerName(name, typ))
			return this, nil
		})
	in.RegisterIntrinsic("TauProfiler::~TauProfiler",
		func(_ *interp.Interp, this *interp.Object, args []interp.Value) (interp.Value, error) {
			rt.Stop()
			return this, nil
		})
	return rt
}

// timerName renders the display name: the static name plus the
// run-time type of the object (for member templates), e.g.
// "push() Stack<int>".
func timerName(name, typ string) string {
	if typ == "" || typ == "void" {
		return name
	}
	return name + " " + typ
}

func (rt *Runtime) now() uint64 {
	if rt.mode == WallClock {
		return uint64(time.Since(rt.t0).Nanoseconds())
	}
	if rt.in == nil {
		rt.steps++
		return rt.steps
	}
	return rt.in.Clock()
}

// Start opens a timer scope.
func (rt *Runtime) Start(name string) {
	rt.stack = append(rt.stack, frame{name: name, start: rt.now()})
}

// Stop closes the innermost timer scope and accumulates its times.
func (rt *Runtime) Stop() {
	if len(rt.stack) == 0 {
		return
	}
	f := rt.stack[len(rt.stack)-1]
	rt.stack = rt.stack[:len(rt.stack)-1]
	incl := rt.now() - f.start
	excl := incl
	if f.childTime < excl {
		excl -= f.childTime
	} else {
		excl = 0
	}
	p := rt.data[f.name]
	if p == nil {
		p = &Profile{Name: f.name}
		rt.data[f.name] = p
	}
	p.Calls++
	p.Inclusive += incl
	p.Exclusive += excl
	if rt.sink != nil {
		rt.sink.Sample(f.name, 1, incl, excl)
	}
	if len(rt.stack) > 0 {
		parent := &rt.stack[len(rt.stack)-1]
		parent.childTime += incl
		rt.recordEdge(parent.name, f.name, incl)
	} else {
		rt.recordEdge("<root>", f.name, incl)
	}
}

// Profiles returns the flat profile sorted by exclusive time
// (descending), name-tiebroken for determinism.
func (rt *Runtime) Profiles() []*Profile {
	out := make([]*Profile, 0, len(rt.data))
	for _, p := range rt.data {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Lookup returns the profile for a timer name, or nil.
func (rt *Runtime) Lookup(name string) *Profile { return rt.data[name] }

// TotalTime returns the sum of exclusive times (= total profiled time).
func (rt *Runtime) TotalTime() uint64 {
	var total uint64
	for _, p := range rt.data {
		total += p.Exclusive
	}
	return total
}

// Depth returns the current timer nesting (for tests).
func (rt *Runtime) Depth() int { return len(rt.stack) }

// Unit returns the clock unit label for reports.
func (rt *Runtime) Unit() string {
	if rt.mode == WallClock {
		return "nsec"
	}
	return "steps"
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s: %d calls, incl %d, excl %d", p.Name, p.Calls, p.Inclusive, p.Exclusive)
}
