package tau

import (
	"testing"

	"pdt/internal/obs"
)

// Edge cases of the measurement runtime: unbalanced stops, zero-length
// wall-clock frames, export from nil/empty runtimes, and the
// standalone step clock the streaming tests rely on.

// TestStopEmptyStack pins that an unbalanced Stop — a destructor
// intrinsic firing with no matching constructor, or a caller driving
// the runtime by hand — is ignored rather than panicking.
func TestStopEmptyStack(t *testing.T) {
	rt := NewRuntime(VirtualClock)
	rt.Stop() // nothing open
	if rt.Depth() != 0 || len(rt.Profiles()) != 0 || len(rt.Edges()) != 0 {
		t.Errorf("unbalanced Stop mutated the runtime: depth %d, %d profiles",
			rt.Depth(), len(rt.Profiles()))
	}
	rt.Start("f()")
	rt.Stop()
	rt.Stop() // unbalanced again, after real activity
	p := rt.Lookup("f()")
	if p == nil || p.Calls != 1 {
		t.Errorf("profile after extra Stop: %v", p)
	}
}

// TestWallClockZeroDurationFrames pins that back-to-back wall-clock
// scopes too fast to be separated by the clock stay consistent: no
// unsigned underflow, exclusive never exceeds inclusive.
func TestWallClockZeroDurationFrames(t *testing.T) {
	rt := NewRuntime(WallClock)
	for i := 0; i < 100; i++ {
		rt.Start("outer()")
		rt.Start("inner()")
		rt.Stop()
		rt.Stop()
	}
	for _, p := range rt.Profiles() {
		if p.Calls != 100 {
			t.Errorf("%s: calls = %d, want 100", p.Name, p.Calls)
		}
		if p.Exclusive > p.Inclusive {
			t.Errorf("%s: exclusive %d > inclusive %d (underflow)", p.Name, p.Exclusive, p.Inclusive)
		}
		// A uint64 wraparound would be astronomically large.
		if p.Inclusive > uint64(1)<<62 {
			t.Errorf("%s: inclusive %d looks like an underflow wrap", p.Name, p.Inclusive)
		}
	}
	if rt.Unit() != "nsec" {
		t.Errorf("unit = %q, want nsec", rt.Unit())
	}
}

// TestExportObsNilRuntime pins that exporting from a nil runtime (a
// pipeline that failed before profiling) or into a nil registry is a
// no-op, not a crash.
func TestExportObsNilRuntime(t *testing.T) {
	var rt *Runtime
	rt.ExportObs(obs.New("x")) // must not panic
	NewRuntime(VirtualClock).ExportObs(nil)
}

// TestExportObsEmptyRuntime pins the empty-profile export: a runtime
// that never timed anything still produces a coherent snapshot.
func TestExportObsEmptyRuntime(t *testing.T) {
	m := obs.New("x")
	NewRuntime(VirtualClock).ExportObs(m)
	snap := m.Snapshot()
	if snap.Counters["tau.calls"] != 0 {
		t.Errorf("tau.calls = %d, want 0", snap.Counters["tau.calls"])
	}
	if snap.Gauges["tau.unit.nanoseconds"] != 0 {
		t.Errorf("gauge = %d, want 0 (virtual clock)", snap.Gauges["tau.unit.nanoseconds"])
	}
}

// TestStandaloneStepClock pins the deterministic clock NewRuntime
// provides without an interpreter: every reading advances one step, so
// two identical runs profile identically.
func TestStandaloneStepClock(t *testing.T) {
	run := func() []*Profile {
		rt := NewRuntime(VirtualClock)
		rt.Start("a()")
		rt.Start("b()")
		rt.Stop()
		rt.Stop()
		return rt.Profiles()
	}
	p1, p2 := run(), run()
	if len(p1) != 2 || len(p2) != 2 {
		t.Fatalf("profiles: %v, %v", p1, p2)
	}
	for i := range p1 {
		if *p1[i] != *p2[i] {
			t.Errorf("runs differ: %v vs %v", p1[i], p2[i])
		}
	}
	// b: start=2, stop=3 → incl 1. a: start=1, stop=4 → incl 3, excl 2.
	a, b := p1[1], p1[0]
	if a.Name != "a()" { // sorted by exclusive descending
		a, b = b, a
	}
	if a.Inclusive != 3 || a.Exclusive != 2 || b.Inclusive != 1 || b.Exclusive != 1 {
		t.Errorf("step-clock times: a=%v b=%v", a, b)
	}
}

// TestSinkReceivesDeltas pins the streaming contract Stop() upholds:
// one Sample per completed scope with calls=1 deltas, one Edge per
// parent→child observation, so sums over events equal the one-shot
// profile.
func TestSinkReceivesDeltas(t *testing.T) {
	var samples, edges int
	var sampleCalls uint64
	sink := sinkFuncs{
		sample: func(name string, calls, incl, excl uint64) {
			samples++
			sampleCalls += calls
			if calls != 1 {
				t.Errorf("sample %s: calls = %d, want delta of 1", name, calls)
			}
			if excl > incl {
				t.Errorf("sample %s: excl %d > incl %d", name, excl, incl)
			}
		},
		edge: func(parent, child string, calls, incl uint64) {
			edges++
			if parent == "" || child == "" {
				t.Errorf("edge with empty endpoint: %q→%q", parent, child)
			}
		},
	}
	rt := NewRuntime(VirtualClock)
	rt.SetSink(sink)
	for i := 0; i < 3; i++ {
		rt.Start("outer()")
		rt.Start("inner()")
		rt.Stop()
		rt.Stop()
	}
	if samples != 6 || sampleCalls != 6 || edges != 6 {
		t.Errorf("samples=%d calls=%d edges=%d, want 6/6/6", samples, sampleCalls, edges)
	}
	rt.SetSink(nil) // detaching must stop the flow
	rt.Start("quiet()")
	rt.Stop()
	if samples != 6 {
		t.Error("detached sink still receiving")
	}
}

type sinkFuncs struct {
	sample func(string, uint64, uint64, uint64)
	edge   func(string, string, uint64, uint64)
}

func (s sinkFuncs) Sample(name string, calls, incl, excl uint64) { s.sample(name, calls, incl, excl) }
func (s sinkFuncs) Edge(parent, child string, calls, incl uint64) {
	s.edge(parent, child, calls, incl)
}
