package tau

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Call-path profiling: in addition to the flat profile, the runtime
// records parent→child timer edges, giving the caller-context view TAU
// provides for drilling into where a kernel's time is spent from.

// Edge is one parent→child timer relationship.
type Edge struct {
	Parent    string
	Child     string
	Calls     uint64
	Inclusive uint64
}

// edgeKey identifies an edge.
type edgeKey struct{ parent, child string }

// recordEdge accumulates an edge sample (called from Stop).
func (rt *Runtime) recordEdge(parent, child string, incl uint64) {
	if rt.edges == nil {
		rt.edges = map[edgeKey]*Edge{}
	}
	k := edgeKey{parent: parent, child: child}
	e := rt.edges[k]
	if e == nil {
		e = &Edge{Parent: parent, Child: child}
		rt.edges[k] = e
	}
	e.Calls++
	e.Inclusive += incl
	if rt.sink != nil {
		rt.sink.Edge(parent, child, 1, incl)
	}
}

// Edges returns the call-path edges sorted by inclusive time
// (descending, name-tiebroken).
func (rt *Runtime) Edges() []*Edge {
	out := make([]*Edge, 0, len(rt.edges))
	for _, e := range rt.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inclusive != out[j].Inclusive {
			return out[i].Inclusive > out[j].Inclusive
		}
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}

// EdgesFrom returns the edges whose parent is the given timer.
func (rt *Runtime) EdgesFrom(parent string) []*Edge {
	var out []*Edge
	for _, e := range rt.Edges() {
		if e.Parent == parent {
			out = append(out, e)
		}
	}
	return out
}

// WriteCallPaths prints the caller→callee breakdown: for each parent
// (by inclusive child time), its children with call counts and
// inclusive time.
func WriteCallPaths(w io.Writer, rt *Runtime) {
	edges := rt.Edges()
	if len(edges) == 0 {
		fmt.Fprintln(w, "(no call-path data)")
		return
	}
	byParent := map[string][]*Edge{}
	var parents []string
	for _, e := range edges {
		if _, ok := byParent[e.Parent]; !ok {
			parents = append(parents, e.Parent)
		}
		byParent[e.Parent] = append(byParent[e.Parent], e)
	}
	unit := rt.Unit()
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	fmt.Fprintf(w, "Call paths (%s)\n", unit)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
	for _, parent := range parents {
		fmt.Fprintf(w, "%s\n", parent)
		for _, e := range byParent[parent] {
			fmt.Fprintf(w, "  => %-45s %10d calls %12d %s\n",
				e.Child, e.Calls, e.Inclusive, unit)
		}
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 78))
}
