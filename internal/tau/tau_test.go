package tau_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/interp"
	"pdt/internal/tau"
)

func buildPDBAndFS(t *testing.T, files map[string]string, mainFile string) (*ductape.PDB, *core.Result, map[string]string) {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, mainFile, files[mainFile], opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	instr, err := tau.Instrument(fs, db)
	if err != nil {
		t.Fatal(err)
	}
	return db, res, instr
}

// TestInstrumentorSelect is experiment E7 (Figure 6): only member
// function templates get CT(*this); free and static-member function
// templates do not.
func TestInstrumentorSelect(t *testing.T) {
	src := `
template <class T>
class Host {
public:
    void member(T v) { }
    static T maker() { T x; return x; }
};
template <class T> T freebie(T v) { return v; }
int main() {
    Host<int> h;
    h.member(1);
    int a = Host<int>::maker();
    return freebie(a);
}
`
	_, _, instr := buildPDBAndFS(t, map[string]string{"main.cpp": src}, "main.cpp")
	out, ok := instr["main.cpp"]
	if !ok {
		t.Fatalf("main.cpp not instrumented; got %v", keys(instr))
	}
	if !strings.Contains(out, "#include <tau.h>") {
		t.Error("tau.h not included")
	}
	// Member function template: CT(*this).
	if !strings.Contains(out, `TAU_PROFILE("Host::member()", CT(*this), TAU_USER)`) {
		t.Errorf("member template instrumentation wrong:\n%s", out)
	}
	// Static member: no CT(*this).
	if !strings.Contains(out, `TAU_PROFILE("Host::maker()", "", TAU_USER)`) {
		t.Errorf("static member instrumentation wrong:\n%s", out)
	}
	// Free function template: no CT(*this).
	if !strings.Contains(out, `TAU_PROFILE("freebie()", "", TAU_USER)`) {
		t.Errorf("free template instrumentation wrong:\n%s", out)
	}
	// main itself instrumented as a plain routine.
	if !strings.Contains(out, `TAU_PROFILE("main()", "", TAU_USER)`) {
		t.Errorf("main not instrumented:\n%s", out)
	}
	// CT(*this) must never appear on the static member or free template.
	if n := strings.Count(out, "CT(*this)"); n != 1 {
		t.Errorf("CT(*this) appears %d times, want 1:\n%s", n, out)
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestProfileEndToEnd runs the whole pipeline: instrument, recompile,
// execute, and check the collected statistics — the run-time half of
// §4.1, with CT(*this) separating instantiations.
func TestProfileEndToEnd(t *testing.T) {
	src := `
template <class T>
class Worker {
public:
    void spin(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += i;
    }
};
int main() {
    Worker<int> wi;
    Worker<double> wd;
    for (int i = 0; i < 3; i++) wi.spin(50);
    wd.spin(200);
    return 0;
}
`
	res, err := tau.ProfileSource(map[string]string{"main.cpp": src}, "main.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	rt := res.Runtime
	intProf := rt.Lookup("Worker::spin() Worker<int>")
	dblProf := rt.Lookup("Worker::spin() Worker<double>")
	if intProf == nil || dblProf == nil {
		var names []string
		for _, p := range rt.Profiles() {
			names = append(names, p.Name)
		}
		t.Fatalf("per-instantiation profiles missing; have %v", names)
	}
	if intProf.Calls != 3 {
		t.Errorf("Worker<int>::spin calls = %d, want 3", intProf.Calls)
	}
	if dblProf.Calls != 1 {
		t.Errorf("Worker<double>::spin calls = %d, want 1", dblProf.Calls)
	}
	// wd.spin(200) does ~4/3 of the per-call work of wi.spin(50)*3
	// total; inclusive time of the double instantiation must exceed
	// one int call but the 3-call total must exceed a single 50-loop.
	if dblProf.Inclusive <= intProf.Inclusive/3 {
		t.Errorf("timing shape wrong: int=%d dbl=%d", intProf.Inclusive, dblProf.Inclusive)
	}
	// main's profile includes everything.
	mainProf := rt.Lookup("main()")
	if mainProf == nil {
		t.Fatal("main profile missing")
	}
	if mainProf.Inclusive < intProf.Inclusive+dblProf.Inclusive {
		t.Errorf("main inclusive %d < children %d+%d",
			mainProf.Inclusive, intProf.Inclusive, dblProf.Inclusive)
	}
	if mainProf.Exclusive >= mainProf.Inclusive {
		t.Errorf("main exclusive %d should be < inclusive %d",
			mainProf.Exclusive, mainProf.Inclusive)
	}
}

func TestProfileDeterministic(t *testing.T) {
	src := `
int work(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }
int main() { return work(100) > 0 ? 0 : 1; }
`
	run := func() []uint64 {
		res, err := tau.ProfileSource(map[string]string{"m.cpp": src}, "m.cpp", tau.VirtualClock)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for _, p := range res.Runtime.Profiles() {
			out = append(out, p.Inclusive, p.Exclusive, p.Calls)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different profile shapes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic profiles: %v vs %v", a, b)
		}
	}
}

func TestExceptionStopsTimer(t *testing.T) {
	// TAU relies on scoped destruction: when an exception unwinds a
	// function, its profiler object's destructor must still stop the
	// timer.
	src := `
class Boom { };
void explode() { throw Boom(); }
int main() {
    try { explode(); } catch (Boom & b) { }
    return 0;
}
`
	res, err := tau.ProfileSource(map[string]string{"m.cpp": src}, "m.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime.Depth() != 0 {
		t.Errorf("timer stack not empty after unwinding: depth=%d", res.Runtime.Depth())
	}
	p := res.Runtime.Lookup("explode()")
	if p == nil || p.Calls != 1 {
		t.Errorf("explode profile = %+v", p)
	}
}

func TestReportFormat(t *testing.T) {
	src := `
int helper() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }
int main() { return helper() > 0 ? 0 : 1; }
`
	res, err := tau.ProfileSource(map[string]string{"m.cpp": src}, "m.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tau.WriteReport(&sb, res.Runtime)
	out := sb.String()
	for _, want := range []string{"%Time", "Exclusive", "Inclusive", "#Calls",
		"Name", "helper()", "main()", "steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var bars strings.Builder
	tau.WriteBars(&bars, res.Runtime, 30)
	if !strings.Contains(bars.String(), "#") || !strings.Contains(bars.String(), "%") {
		t.Errorf("bars output:\n%s", bars.String())
	}
}

func TestInstrumentedProgramStillBehaves(t *testing.T) {
	// Instrumentation must not change observable behaviour.
	src := `
#include <iostream>
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int main() {
    cout << fib(10);
    return 0;
}
`
	res, err := tau.ProfileSource(map[string]string{"m.cpp": src}, "m.cpp", tau.VirtualClock)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "55" {
		t.Errorf("output = %q, want 55", res.Output)
	}
	p := res.Runtime.Lookup("fib(int)")
	if p == nil || p.Calls != 177 { // fib(10) makes 177 calls
		t.Errorf("fib profile = %+v", p)
	}
	if p != nil && p.Exclusive > p.Inclusive {
		t.Error("exclusive exceeds inclusive")
	}
}

func TestRuntimeDirectAPI(t *testing.T) {
	// The runtime can be driven directly (without instrumentation).
	src := `int main() { return 0; }`
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "m.cpp", src, opts)
	if res.HasErrors() {
		t.Fatal(res.Diagnostics)
	}
	in := newInterp(res)
	rt := tau.Install(in, tau.VirtualClock)
	rt.Start("outer")
	rt.Start("inner")
	rt.Stop()
	rt.Stop()
	inner := rt.Lookup("inner")
	outer := rt.Lookup("outer")
	if inner == nil || outer == nil {
		t.Fatal("profiles missing")
	}
	if outer.Inclusive < inner.Inclusive {
		t.Error("outer inclusive must cover inner")
	}
}

func newInterp(res *core.Result) *interp.Interp {
	return interp.New(res.Unit, interp.Options{})
}
