package tau

import (
	"pdt/internal/obs"
)

// ExportObs publishes the runtime's profile data through the shared
// obs exporter, so a TAU profile and the pipeline's own stage metrics
// travel in one snapshot: a "tau" stage span whose duration is the
// total profiled time, with one child span per timer carrying the
// timer's exclusive time as its duration and its call count as its
// item count. Timer names keep the CT(obj) run-time type, so each
// template instantiation exports under its own name. Durations are in
// the runtime's clock unit (the "tau.unit.nanoseconds" gauge is 1 for
// wall-clock runs, 0 for virtual-clock step counts).
func (rt *Runtime) ExportObs(m *obs.Metrics) {
	if rt == nil || m == nil {
		return
	}
	sp := m.StartSpan("tau")
	var calls uint64
	for _, p := range rt.Profiles() {
		cs := sp.Start(p.Name)
		cs.AddItems(int64(p.Calls))
		cs.EndAt(int64(p.Exclusive))
		calls += p.Calls
	}
	sp.AddItems(int64(len(rt.data)))
	sp.EndAt(int64(rt.TotalTime()))
	m.Counter("tau.calls").Add(int64(calls))
	unit := int64(0)
	if rt.mode == WallClock {
		unit = 1
	}
	m.Gauge("tau.unit.nanoseconds").Set(unit)
}
