package tau

import (
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
	"pdt/internal/source"
)

// itemRef is one instrumentation target — the structure the paper's
// Figure 6 builds: an item plus whether CT(*this) must supply run-time
// type information (member functions of templates).
type itemRef struct {
	name    string
	needsCT bool
	file    *source.File
	line    int
	col     int // location of the body's '{'
}

// Instrument rewrites the sources of a program according to its PDB:
// every function body is annotated with a TAU_PROFILE macro right
// after its opening brace, and "#include <tau.h>" is prepended to each
// modified file. It returns the new content of every changed file.
//
// Template handling follows Figure 6 exactly: the instrumentor
// iterates over all templates, filters the function-like kinds
// (TE_MEMFUNC, TE_STATMEM, TE_FUNC), and inserts CT(*this) only for
// member functions (which have a parent class whose unique
// instantiation should be incorporated into the timer name at run
// time); static members and free function templates get no CT.
func Instrument(fs *source.FileSet, db *ductape.PDB) (map[string]string, error) {
	var items []itemRef
	seen := map[string]bool{} // dedupe by file:line:col

	add := func(ref itemRef) {
		if ref.file == nil || ref.file.System || ref.line == 0 {
			return
		}
		key := fmt.Sprintf("%s:%d:%d", ref.file.Name, ref.line, ref.col)
		if seen[key] {
			return
		}
		seen[key] = true
		items = append(items, ref)
	}

	// Get the list of templates (Figure 6 step (1)).
	for _, te := range db.Templates() {
		tekind := te.Kind()
		// Filter out non-function templates (2).
		if tekind != ductape.TE_MEMFUNC && tekind != ductape.TE_STATMEM &&
			tekind != ductape.TE_FUNC {
			continue
		}
		body := te.BodyBegin()
		if !body.Valid() {
			continue // declaration only; the definition will be seen separately
		}
		// The target helps identify if we need to put CT(*this) in the
		// type (3): member functions only.
		needsCT := tekind == ductape.TE_MEMFUNC
		add(itemRef{
			name:    templateTimerName(te),
			needsCT: needsCT,
			file:    lookupSource(fs, body.File),
			line:    body.Line,
			col:     body.Col,
		})
	}

	// Plain routines (non-template): instrument definitions directly.
	for _, r := range db.Routines() {
		if r.IsInstantiation() {
			continue // covered by the template-definition insertion
		}
		body := r.BodyBegin()
		if !body.Valid() {
			continue
		}
		add(itemRef{
			name: r.FullName(),
			file: lookupSource(fs, body.File),
			line: body.Line,
			col:  body.Col,
		})
	}

	// sort(itemvec.begin(), itemvec.end(), locCmp) — then apply edits
	// bottom-up so earlier offsets stay valid.
	sort.Slice(items, func(i, j int) bool {
		if items[i].file != items[j].file {
			return items[i].file.Name < items[j].file.Name
		}
		if items[i].line != items[j].line {
			return items[i].line > items[j].line
		}
		return items[i].col > items[j].col
	})

	edited := map[string][]byte{}
	for _, ref := range items {
		content, ok := edited[ref.file.Name]
		if !ok {
			content = append([]byte(nil), ref.file.Content...)
		}
		off := ref.file.Offset(ref.line, ref.col)
		// Find the '{' at or after the recorded position.
		for off < len(content) && content[off] != '{' {
			off++
		}
		if off >= len(content) {
			continue
		}
		insert := instrumentationText(ref)
		content = append(content[:off+1], append([]byte(insert), content[off+1:]...)...)
		edited[ref.file.Name] = content
	}

	out := map[string]string{}
	for name, content := range edited {
		out[name] = "#include <tau.h>\n" + string(content)
	}
	return out, nil
}

// lookupSource maps a PDB file item back to the loaded source file.
func lookupSource(fs *source.FileSet, f *ductape.File) *source.File {
	if f == nil {
		return nil
	}
	if sf := fs.Lookup(f.Name()); sf != nil {
		return sf
	}
	return nil
}

// templateTimerName renders the static part of a member/function
// template's timer name ("push()", "Stack::Stack()").
func templateTimerName(te *ductape.Template) string {
	name := te.Name()
	// Recover the owning class's base name from an instantiation, so
	// the display reads "Stack::push()" rather than "push()".
	if insts := te.InstantiatedRoutines(); len(insts) > 0 {
		if cls := insts[0].ParentClass(); cls != nil {
			base := cls.Name()
			if i := strings.IndexByte(base, '<'); i >= 0 {
				base = base[:i]
			}
			name = base + "::" + name
		}
	}
	return name + "()"
}

// instrumentationText renders the inserted macro call.
func instrumentationText(ref itemRef) string {
	if ref.needsCT {
		// Member function of a template: incorporate the unique
		// instantiation via run-time type information.
		return fmt.Sprintf(" TAU_PROFILE(%q, CT(*this), TAU_USER);", ref.name)
	}
	return fmt.Sprintf(" TAU_PROFILE(%q, \"\", TAU_USER);", ref.name)
}
