// Package ductape is the Go rendition of DUCTAPE — the "C++ program
// Database Utilities and Conversion Tools APplication Environment" of
// the paper's §3.3. It provides an object-oriented API over PDB files:
// every PDB item type is represented by a type of the corresponding
// name, attributes that reference other entities are pointers to the
// corresponding objects, and common attributes are factored into the
// interface hierarchy of the paper's Figure 4:
//
//	SimpleItem
//	├── File
//	└── Item                (location, parent, access)
//	    ├── Macro
//	    ├── Type
//	    └── FatItem         (header and body extents)
//	        ├── Template
//	        ├── Namespace
//	        └── TemplateItem (entities instantiable from templates)
//	            ├── Class
//	            └── Routine
package ductape

import (
	"fmt"

	"pdt/internal/pdb"
)

// Flag is the user-settable traversal mark used by tree walks (the
// paper's Figure 5 pdbtree code uses ACTIVE/INACTIVE to cut cycles).
type Flag int

// Traversal flags.
const (
	Inactive Flag = iota
	Active
)

// SimpleItem is the root of the DUCTAPE hierarchy: anything with a
// name and a PDB ID.
type SimpleItem interface {
	ID() int
	Name() string
	// Prefix returns the PDB item prefix ("so", "ro", ...).
	Prefix() string
}

// Location is a resolved source location.
type Location struct {
	File *File
	Line int
	Col  int
}

// Valid reports whether the location points into a file.
func (l Location) Valid() bool { return l.File != nil && l.Line > 0 }

func (l Location) String() string {
	if !l.Valid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", l.File.Name(), l.Line, l.Col)
}

// Item extends SimpleItem with a source location, an optional parent
// class or namespace, and an access mode.
type Item interface {
	SimpleItem
	Location() Location
	ParentClass() *Class
	ParentNamespace() *Namespace
	Access() string
}

// FatItem extends Item with header and body extents.
type FatItem interface {
	Item
	HeaderBegin() Location
	HeaderEnd() Location
	BodyBegin() Location
	BodyEnd() Location
}

// TemplateItem is an entity that can be instantiated from a template.
type TemplateItem interface {
	FatItem
	// Template returns the originating template, or nil (for
	// non-instantiations, and for specializations under the
	// paper-faithful analyzer mode).
	Template() *Template
	IsInstantiation() bool
	IsSpecialization() bool
}

// --- File -------------------------------------------------------------------

// File is a "so" item.
type File struct {
	p   *PDB
	raw *pdb.SourceFile

	includes   []*File
	includedBy []*File
}

// ID returns the PDB item ID.
func (f *File) ID() int { return f.raw.ID }

// Name returns the file name as compiled.
func (f *File) Name() string { return f.raw.Name }

// Prefix returns "so".
func (f *File) Prefix() string { return pdb.PrefixSourceFile }

// System reports whether this is a system/built-in header.
func (f *File) System() bool { return f.raw.System }

// Includes returns the files this file directly includes.
func (f *File) Includes() []*File { return f.includes }

// IncludedBy returns the files that directly include this file.
func (f *File) IncludedBy() []*File { return f.includedBy }

// --- Macro -------------------------------------------------------------------

// Macro is a "ma" item.
type Macro struct {
	p   *PDB
	raw *pdb.Macro
	loc Location
}

// ID returns the PDB item ID.
func (m *Macro) ID() int { return m.raw.ID }

// Name returns the macro name.
func (m *Macro) Name() string { return m.raw.Name }

// Prefix returns "ma".
func (m *Macro) Prefix() string { return pdb.PrefixMacro }

// Location returns the definition location.
func (m *Macro) Location() Location { return m.loc }

// ParentClass returns nil (macros have no parent).
func (m *Macro) ParentClass() *Class { return nil }

// ParentNamespace returns nil (macros have no parent).
func (m *Macro) ParentNamespace() *Namespace { return nil }

// Access returns "NA".
func (m *Macro) Access() string { return "NA" }

// Kind returns "def" or "undef".
func (m *Macro) Kind() string { return m.raw.Kind }

// Text returns the macro definition text.
func (m *Macro) Text() string { return m.raw.Text }

// --- Type -------------------------------------------------------------------

// Type is a "ty" item.
type Type struct {
	p   *PDB
	raw *pdb.Type
}

// ID returns the PDB item ID.
func (t *Type) ID() int { return t.raw.ID }

// Name returns the type spelling ("const int &").
func (t *Type) Name() string { return t.raw.Name }

// Prefix returns "ty".
func (t *Type) Prefix() string { return pdb.PrefixType }

// Location returns the zero location (types are positionless in the
// PDB).
func (t *Type) Location() Location { return Location{} }

// ParentClass returns nil.
func (t *Type) ParentClass() *Class { return nil }

// ParentNamespace returns nil.
func (t *Type) ParentNamespace() *Namespace { return nil }

// Access returns "NA".
func (t *Type) Access() string { return "NA" }

// Kind returns the "ykind" attribute.
func (t *Type) Kind() string { return t.raw.Kind }

// IntegerKind returns the "yikind" attribute for integral types.
func (t *Type) IntegerKind() string { return t.raw.IntKind }

// Elem returns the referent of a ptr/ref/array type.
func (t *Type) Elem() *Type { return t.p.typeByID(t.raw.Elem.ID) }

// BaseType returns the unqualified type of a tref.
func (t *Type) BaseType() *Type { return t.p.typeByID(t.raw.Tref.ID) }

// Qualifiers returns the cv-qualifiers of a tref or func type.
func (t *Type) Qualifiers() []string { return t.raw.Qual }

// IsConst reports whether the type carries a const qualifier.
func (t *Type) IsConst() bool {
	for _, q := range t.raw.Qual {
		if q == "const" {
			return true
		}
	}
	return false
}

// Class returns the class of a class type.
func (t *Type) Class() *Class { return t.p.classByID(t.raw.Class.ID) }

// ReturnType returns the return type of a function type.
func (t *Type) ReturnType() *Type { return t.p.typeByID(t.raw.Ret.ID) }

// ArgumentTypes returns the parameter types of a function type.
func (t *Type) ArgumentTypes() []*Type {
	out := make([]*Type, 0, len(t.raw.Args))
	for _, a := range t.raw.Args {
		out = append(out, t.p.typeByID(a.ID))
	}
	return out
}

// HasEllipsis reports a variadic function type.
func (t *Type) HasEllipsis() bool { return t.raw.Ellipsis }

// ArrayLength returns the element count of an array type (-1 unknown).
func (t *Type) ArrayLength() int64 { return t.raw.ArrayLen }

// --- Template ----------------------------------------------------------------

// TemplateKind values mirror the PDB "tkind" attribute and the
// pdbItem::templ_t constants the paper's Figure 6 switches on.
const (
	TE_CLASS   = "class"
	TE_FUNC    = "func"
	TE_MEMFUNC = "memfunc"
	TE_STATMEM = "statmem"
)

// Template is a "te" item.
type Template struct {
	p   *PDB
	raw *pdb.Template
	loc Location
	pos fourPos

	instClasses  []*Class
	instRoutines []*Routine
}

type fourPos struct {
	hb, he, bb, be Location
}

// ID returns the PDB item ID.
func (t *Template) ID() int { return t.raw.ID }

// Name returns the template name.
func (t *Template) Name() string { return t.raw.Name }

// Prefix returns "te".
func (t *Template) Prefix() string { return pdb.PrefixTemplate }

// Location returns the declaration location.
func (t *Template) Location() Location { return t.loc }

// ParentClass returns the enclosing class, or nil.
func (t *Template) ParentClass() *Class { return t.p.classByID(t.raw.Class.ID) }

// ParentNamespace returns the enclosing namespace, or nil.
func (t *Template) ParentNamespace() *Namespace { return t.p.namespaceByID(t.raw.Namespace.ID) }

// Access returns the member access mode.
func (t *Template) Access() string { return orNA(t.raw.Access) }

// HeaderBegin returns the start of the declaration header.
func (t *Template) HeaderBegin() Location { return t.pos.hb }

// HeaderEnd returns the end of the declaration header.
func (t *Template) HeaderEnd() Location { return t.pos.he }

// BodyBegin returns the start of the body.
func (t *Template) BodyBegin() Location { return t.pos.bb }

// BodyEnd returns the end of the body.
func (t *Template) BodyEnd() Location { return t.pos.be }

// Kind returns class/func/memfunc/statmem.
func (t *Template) Kind() string { return t.raw.Kind }

// Text returns the declaration text ("ttext").
func (t *Template) Text() string { return t.raw.Text }

// InstantiatedClasses returns the classes instantiated from this
// template (linked via "ctempl").
func (t *Template) InstantiatedClasses() []*Class { return t.instClasses }

// InstantiatedRoutines returns the routines instantiated from this
// template (linked via "rtempl").
func (t *Template) InstantiatedRoutines() []*Routine { return t.instRoutines }

func orNA(s string) string {
	if s == "" {
		return "NA"
	}
	return s
}
