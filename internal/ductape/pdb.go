package ductape

import (
	"io"
	"os"
	"sort"
	"sync"

	"pdt/internal/cmap"
	"pdt/internal/durable"
	"pdt/internal/pdb"
)

// PDB represents an entire program database file: it owns the resolved
// object graph and provides the global views of the paper's §3.3 — the
// source file inclusion tree, the static call tree, and the class
// hierarchy — plus lists of all items by kind.
type PDB struct {
	raw *pdb.PDB

	files      []*File
	routines   []*Routine
	classes    []*Class
	types      []*Type
	templates  []*Template
	namespaces []*Namespace
	macros     []*Macro

	fileByID      *cmap.Map[int, *File]
	routineByID   *cmap.Map[int, *Routine]
	classByIDm    *cmap.Map[int, *Class]
	typeByIDm     *cmap.Map[int, *Type]
	templateByIDm *cmap.Map[int, *Template]
	namespByIDm   *cmap.Map[int, *Namespace]
}

// parallelBuildThreshold is the item count above which FromRaw builds
// the per-kind indices concurrently. Small databases stay on the
// sequential path: goroutine hand-off costs more than the work saved.
const parallelBuildThreshold = 4096

// FromRaw wraps a parsed pdb.PDB into the navigable object graph.
func FromRaw(raw *pdb.PDB) *PDB {
	p := &PDB{
		raw:           raw,
		fileByID:      cmap.NewInt[*File](),
		routineByID:   cmap.NewInt[*Routine](),
		classByIDm:    cmap.NewInt[*Class](),
		typeByIDm:     cmap.NewInt[*Type](),
		templateByIDm: cmap.NewInt[*Template](),
		namespByIDm:   cmap.NewInt[*Namespace](),
	}
	// Files first: every other kind's loc() resolves through fileByID.
	p.files = make([]*File, len(raw.Files))
	for i, rf := range raw.Files {
		f := &File{p: p, raw: rf}
		p.files[i] = f
		p.fileByID.Set(rf.ID, f)
	}
	// The remaining kinds only read fileByID and write disjoint slices
	// and maps, so on large databases they build concurrently — the
	// sharded maps absorb the parallel inserts without a global lock.
	builders := []func(){
		func() {
			p.types = make([]*Type, len(raw.Types))
			for i, rt := range raw.Types {
				t := &Type{p: p, raw: rt}
				p.types[i] = t
				p.typeByIDm.Set(rt.ID, t)
			}
		},
		func() {
			p.namespaces = make([]*Namespace, len(raw.Namespaces))
			for i, rn := range raw.Namespaces {
				n := &Namespace{p: p, raw: rn, loc: p.loc(rn.Loc)}
				p.namespaces[i] = n
				p.namespByIDm.Set(rn.ID, n)
			}
		},
		func() {
			p.templates = make([]*Template, len(raw.Templates))
			for i, rt := range raw.Templates {
				t := &Template{p: p, raw: rt, loc: p.loc(rt.Loc), pos: p.pos(rt.Pos)}
				p.templates[i] = t
				p.templateByIDm.Set(rt.ID, t)
			}
		},
		func() {
			p.classes = make([]*Class, len(raw.Classes))
			for i, rc := range raw.Classes {
				c := &Class{p: p, raw: rc, loc: p.loc(rc.Loc), pos: p.pos(rc.Pos)}
				p.classes[i] = c
				p.classByIDm.Set(rc.ID, c)
			}
		},
		func() {
			p.routines = make([]*Routine, len(raw.Routines))
			for i, rr := range raw.Routines {
				r := &Routine{p: p, raw: rr, loc: p.loc(rr.Loc), pos: p.pos(rr.Pos)}
				p.routines[i] = r
				p.routineByID.Set(rr.ID, r)
			}
		},
	}
	if raw.ItemCount() >= parallelBuildThreshold {
		var wg sync.WaitGroup
		for _, build := range builders {
			wg.Add(1)
			go func(build func()) {
				defer wg.Done()
				build()
			}(build)
		}
		wg.Wait()
	} else {
		for _, build := range builders {
			build()
		}
	}
	p.link()
	return p
}

// Read parses a PDB file and builds the object graph.
func Read(r io.Reader) (*PDB, error) {
	raw, err := pdb.Read(r)
	if err != nil {
		return nil, err
	}
	return FromRaw(raw), nil
}

// ReadFile reads a PDB from disk and builds the object graph. It is
// the canonical single-file constructor; tools that ingest many files,
// need cancellation, or want the chunked parallel parser should use
// internal/pdbio instead.
func ReadFile(path string) (*PDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Load reads a PDB from disk.
//
// Deprecated: Load is kept for compatibility; use ReadFile, or
// pdbio.Load for the concurrent, option-driven path.
func Load(path string) (*PDB, error) { return ReadFile(path) }

// Write serializes the database in the ASCII text encoding.
func (p *PDB) Write(w io.Writer) error { return p.raw.Write(w) }

// WriteBinary serializes the database in the PDTB binary encoding.
func (p *PDB) WriteBinary(w io.Writer) error { return p.raw.WriteBinary(w) }

// Save writes the database to disk atomically and durably: the bytes
// are staged to a same-directory temp file and renamed over path only
// on an error-free commit, so a crash or full disk never leaves a
// torn database — path holds the old bytes or the new, never a
// prefix.
func (p *PDB) Save(path string) error {
	w, err := durable.Create(path)
	if err != nil {
		return err
	}
	if err := p.Write(w); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Raw returns the underlying document model.
func (p *PDB) Raw() *pdb.PDB { return p.raw }

// link resolves cross-references into pointers and builds the derived
// and caller back-links.
func (p *PDB) link() {
	for _, f := range p.files {
		for _, inc := range f.raw.Includes {
			if target := p.fileByID.Value(inc.ID); target != nil {
				f.includes = append(f.includes, target)
				target.includedBy = append(target.includedBy, f)
			}
		}
	}
	for _, c := range p.classes {
		for _, b := range c.raw.Bases {
			base := p.classByIDm.Value(b.Class.ID)
			c.bases = append(c.bases, Base{Class: base, Access: b.Access,
				Virtual: b.Virtual, Loc: p.loc(b.Loc)})
			if base != nil {
				base.derived = append(base.derived, c)
			}
		}
		for _, fr := range c.raw.Funcs {
			if r := p.routineByID.Value(fr.Routine.ID); r != nil {
				c.funcs = append(c.funcs, r)
			}
		}
		for _, m := range c.raw.Members {
			c.members = append(c.members, Member{Name: m.Name, Loc: p.loc(m.Loc),
				Access: m.Access, Kind: m.Kind, Type: p.typeByIDm.Value(m.Type.ID),
				Static: m.Static})
		}
		if t := p.templateByIDm.Value(c.raw.Template.ID); t != nil {
			t.instClasses = append(t.instClasses, c)
		}
	}
	for _, r := range p.routines {
		for _, cs := range r.raw.Calls {
			callee := p.routineByID.Value(cs.Callee.ID)
			if callee == nil {
				continue
			}
			r.callees = append(r.callees, &Call{p: p, callee: callee,
				virtual: cs.Virtual, loc: p.loc(cs.Loc)})
			callee.callers = append(callee.callers, r)
		}
		if t := p.templateByIDm.Value(r.raw.Template.ID); t != nil {
			t.instRoutines = append(t.instRoutines, r)
		}
	}
}

func (p *PDB) loc(l pdb.Loc) Location {
	if !l.Valid() {
		return Location{}
	}
	return Location{File: p.fileByID.Value(l.File.ID), Line: l.Line, Col: l.Col}
}

func (p *PDB) pos(fp pdb.Pos) fourPos {
	return fourPos{
		hb: p.loc(fp.HeaderBegin), he: p.loc(fp.HeaderEnd),
		bb: p.loc(fp.BodyBegin), be: p.loc(fp.BodyEnd),
	}
}

func (p *PDB) typeByID(id int) *Type           { return p.typeByIDm.Value(id) }
func (p *PDB) classByID(id int) *Class         { return p.classByIDm.Value(id) }
func (p *PDB) templateByID(id int) *Template   { return p.templateByIDm.Value(id) }
func (p *PDB) namespaceByID(id int) *Namespace { return p.namespByIDm.Value(id) }

// --- item lists (the getXXXVec methods of the paper's PDB class) -----------

// Files returns all source files.
func (p *PDB) Files() []*File { return p.files }

// Routines returns all routines.
func (p *PDB) Routines() []*Routine { return p.routines }

// Classes returns all classes.
func (p *PDB) Classes() []*Class { return p.classes }

// Types returns all types.
func (p *PDB) Types() []*Type { return p.types }

// Templates returns all templates (the paper's getTemplateVec).
func (p *PDB) Templates() []*Template { return p.templates }

// Namespaces returns all namespaces.
func (p *PDB) Namespaces() []*Namespace { return p.namespaces }

// Macros returns all macros.
func (p *PDB) Macros() []*Macro {
	if p.macros == nil {
		for _, rm := range p.raw.Macros {
			p.macros = append(p.macros, &Macro{p: p, raw: rm, loc: p.loc(rm.Loc)})
		}
	}
	return p.macros
}

// Items returns every item in the database as SimpleItems.
func (p *PDB) Items() []SimpleItem {
	var out []SimpleItem
	for _, f := range p.files {
		out = append(out, f)
	}
	for _, t := range p.templates {
		out = append(out, t)
	}
	for _, r := range p.routines {
		out = append(out, r)
	}
	for _, c := range p.classes {
		out = append(out, c)
	}
	for _, t := range p.types {
		out = append(out, t)
	}
	for _, n := range p.namespaces {
		out = append(out, n)
	}
	for _, m := range p.Macros() {
		out = append(out, m)
	}
	return out
}

// TemplateItems returns every template-instantiable entity (class or
// routine) — the heterogeneous list the paper's internal base classes
// enable ("list<pdbTemplateItem> can store a list of all template
// instantiations").
func (p *PDB) TemplateItems() []TemplateItem {
	var out []TemplateItem
	for _, c := range p.classes {
		out = append(out, c)
	}
	for _, r := range p.routines {
		out = append(out, r)
	}
	return out
}

// LookupRoutine finds the first routine whose FullName or Name matches.
func (p *PDB) LookupRoutine(name string) *Routine {
	for _, r := range p.routines {
		if r.Name() == name || r.FullName() == name {
			return r
		}
	}
	return nil
}

// LookupClass finds a class by name or full name.
func (p *PDB) LookupClass(name string) *Class {
	for _, c := range p.classes {
		if c.Name() == name || c.FullName() == name {
			return c
		}
	}
	return nil
}

// LookupFile finds a source file by name.
func (p *PDB) LookupFile(name string) *File {
	for _, f := range p.files {
		if f.Name() == name {
			return f
		}
	}
	return nil
}

// --- global views (§3.3: inclusion tree, call tree, class hierarchy) -------

// RootFiles returns the files not included by any other file — the
// roots of the source file inclusion tree.
func (p *PDB) RootFiles() []*File {
	var out []*File
	for _, f := range p.files {
		if len(f.includedBy) == 0 {
			out = append(out, f)
		}
	}
	return out
}

// RootClasses returns the classes with no base classes — the roots of
// the class hierarchy.
func (p *PDB) RootClasses() []*Class {
	var out []*Class
	for _, c := range p.classes {
		if len(c.bases) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// RootRoutines returns routines that have callees but no callers — the
// roots of the static call tree ("main" first when present).
func (p *PDB) RootRoutines() []*Routine {
	var out []*Routine
	for _, r := range p.routines {
		if len(r.callers) == 0 && len(r.callees) > 0 {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Name() == "main") != (out[j].Name() == "main") {
			return out[i].Name() == "main"
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// ResetFlags clears all traversal flags.
func (p *PDB) ResetFlags() {
	for _, r := range p.routines {
		r.Flag = Inactive
	}
	for _, c := range p.classes {
		c.Flag = Inactive
	}
}
