package ductape

import "pdt/internal/pdb"

// --- Namespace ---------------------------------------------------------------

// Namespace is a "na" item.
type Namespace struct {
	p   *PDB
	raw *pdb.Namespace
	loc Location
}

// ID returns the PDB item ID.
func (n *Namespace) ID() int { return n.raw.ID }

// Name returns the namespace name.
func (n *Namespace) Name() string { return n.raw.Name }

// Prefix returns "na".
func (n *Namespace) Prefix() string { return pdb.PrefixNamespace }

// Location returns the declaration location.
func (n *Namespace) Location() Location { return n.loc }

// ParentClass returns nil (namespaces nest only in namespaces).
func (n *Namespace) ParentClass() *Class { return nil }

// ParentNamespace returns the enclosing namespace, or nil.
func (n *Namespace) ParentNamespace() *Namespace { return n.p.namespaceByID(n.raw.Parent.ID) }

// Access returns "NA".
func (n *Namespace) Access() string { return "NA" }

// HeaderBegin returns the zero location (namespaces carry no extents
// in the PDB).
func (n *Namespace) HeaderBegin() Location { return Location{} }

// HeaderEnd returns the zero location.
func (n *Namespace) HeaderEnd() Location { return Location{} }

// BodyBegin returns the zero location.
func (n *Namespace) BodyBegin() Location { return Location{} }

// BodyEnd returns the zero location.
func (n *Namespace) BodyEnd() Location { return Location{} }

// Members returns the names of the namespace's direct members.
func (n *Namespace) Members() []string { return n.raw.Members }

// AliasOf returns the target of a namespace alias, or "".
func (n *Namespace) AliasOf() string { return n.raw.Alias }

// --- Class ---------------------------------------------------------------------

// Base is one resolved base-class link.
type Base struct {
	Class   *Class
	Access  string
	Virtual bool
	Loc     Location
}

// Member is one resolved data member.
type Member struct {
	Name   string
	Loc    Location
	Access string
	Kind   string
	Type   *Type
	Static bool
}

// Class is a "cl" item.
type Class struct {
	p   *PDB
	raw *pdb.Class
	loc Location
	pos fourPos

	bases   []Base
	derived []*Class
	funcs   []*Routine
	members []Member

	// Flag is the user traversal mark (Figure 5).
	Flag Flag
}

// ID returns the PDB item ID.
func (c *Class) ID() int { return c.raw.ID }

// Name returns the class name (template instantiations include their
// arguments: "Stack<int>").
func (c *Class) Name() string { return c.raw.Name }

// Prefix returns "cl".
func (c *Class) Prefix() string { return pdb.PrefixClass }

// Location returns the definition location.
func (c *Class) Location() Location { return c.loc }

// ParentClass returns the enclosing class for nested classes, or nil.
func (c *Class) ParentClass() *Class { return c.p.classByID(c.raw.Parent.ID) }

// ParentNamespace returns the enclosing namespace, or nil.
func (c *Class) ParentNamespace() *Namespace { return c.p.namespaceByID(c.raw.Namespace.ID) }

// Access returns the member access mode for nested classes.
func (c *Class) Access() string { return orNA(c.raw.Access) }

// HeaderBegin returns the start of the class head.
func (c *Class) HeaderBegin() Location { return c.pos.hb }

// HeaderEnd returns the end of the class head.
func (c *Class) HeaderEnd() Location { return c.pos.he }

// BodyBegin returns the '{' of the class body.
func (c *Class) BodyBegin() Location { return c.pos.bb }

// BodyEnd returns the '}' of the class body.
func (c *Class) BodyEnd() Location { return c.pos.be }

// Template returns the originating class template, or nil.
func (c *Class) Template() *Template { return c.p.templateByID(c.raw.Template.ID) }

// IsInstantiation reports whether the class is a template
// instantiation.
func (c *Class) IsInstantiation() bool { return c.raw.Instantiation }

// IsSpecialization reports whether the class is an explicit
// specialization.
func (c *Class) IsSpecialization() bool { return c.raw.Specialization }

// Kind returns class/struct/union.
func (c *Class) Kind() string { return c.raw.Kind }

// BaseClasses returns the resolved direct bases.
func (c *Class) BaseClasses() []Base { return c.bases }

// DerivedClasses returns the classes that list c as a direct base.
func (c *Class) DerivedClasses() []*Class { return c.derived }

// Functions returns the member functions.
func (c *Class) Functions() []*Routine { return c.funcs }

// DataMembers returns the resolved data members.
func (c *Class) DataMembers() []Member { return c.members }

// Friends returns the friend names.
func (c *Class) Friends() []string { return c.raw.Friends }

// FullName returns the qualified name including namespace/class
// parents.
func (c *Class) FullName() string {
	name := c.raw.Name
	if p := c.ParentClass(); p != nil {
		return p.FullName() + "::" + name
	}
	if n := c.ParentNamespace(); n != nil && n.Name() != "" {
		return namespaceFullName(n) + "::" + name
	}
	return name
}

func namespaceFullName(n *Namespace) string {
	if p := n.ParentNamespace(); p != nil {
		return namespaceFullName(p) + "::" + n.Name()
	}
	return n.Name()
}

// --- Routine ---------------------------------------------------------------------

// Call is one resolved call site, as iterated by the paper's Figure 5
// pdbtree code (callvec).
type Call struct {
	p       *PDB
	callee  *Routine
	virtual bool
	loc     Location
}

// Call returns the callee routine.
func (c *Call) Call() *Routine { return c.callee }

// IsVirtual reports whether the call dispatches virtually.
func (c *Call) IsVirtual() bool { return c.virtual }

// Location returns the call site.
func (c *Call) Location() Location { return c.loc }

// Routine is a "ro" item.
type Routine struct {
	p   *PDB
	raw *pdb.Routine
	loc Location
	pos fourPos

	callees []*Call
	callers []*Routine

	// Flag is the user traversal mark (Figure 5 uses it to cut cycles
	// in the static call graph display).
	Flag Flag
}

// ID returns the PDB item ID.
func (r *Routine) ID() int { return r.raw.ID }

// Name returns the routine name.
func (r *Routine) Name() string { return r.raw.Name }

// Prefix returns "ro".
func (r *Routine) Prefix() string { return pdb.PrefixRoutine }

// Location returns the definition (or declaration) location.
func (r *Routine) Location() Location { return r.loc }

// ParentClass returns the owning class for member functions, or nil.
func (r *Routine) ParentClass() *Class { return r.p.classByID(r.raw.Class.ID) }

// ParentNamespace returns the owning namespace, or nil.
func (r *Routine) ParentNamespace() *Namespace { return r.p.namespaceByID(r.raw.Namespace.ID) }

// Access returns pub/prot/priv/NA.
func (r *Routine) Access() string { return orNA(r.raw.Access) }

// HeaderBegin returns the start of the declaration header.
func (r *Routine) HeaderBegin() Location { return r.pos.hb }

// HeaderEnd returns the end of the declaration header.
func (r *Routine) HeaderEnd() Location { return r.pos.he }

// BodyBegin returns the '{' of the definition.
func (r *Routine) BodyBegin() Location { return r.pos.bb }

// BodyEnd returns the '}' of the definition.
func (r *Routine) BodyEnd() Location { return r.pos.be }

// Template returns the originating template, or nil.
func (r *Routine) Template() *Template { return r.p.templateByID(r.raw.Template.ID) }

// IsInstantiation reports whether the routine was instantiated from a
// template (it carries an "rtempl" link).
func (r *Routine) IsInstantiation() bool { return r.raw.Template.Valid() }

// IsSpecialization reports false for routines in the current format.
func (r *Routine) IsSpecialization() bool { return false }

// Signature returns the routine's function type.
func (r *Routine) Signature() *Type { return r.p.typeByID(r.raw.Signature.ID) }

// Kind returns fun/ctor/dtor/op/conv.
func (r *Routine) Kind() string { return r.raw.Kind }

// Linkage returns "C++" or "C".
func (r *Routine) Linkage() string { return r.raw.Linkage }

// Storage returns the storage class ("NA", "static", ...).
func (r *Routine) Storage() string { return r.raw.Storage }

// Virtuality returns no/virt/pure.
func (r *Routine) Virtuality() string { return r.raw.Virtual }

// IsVirtual reports virt or pure.
func (r *Routine) IsVirtual() bool { return r.raw.Virtual == "virt" || r.raw.Virtual == "pure" }

// IsStatic reports a static member function.
func (r *Routine) IsStatic() bool { return r.raw.Static }

// IsConst reports a const member function.
func (r *Routine) IsConst() bool { return r.raw.Const }

// IsInline reports a routine recorded as inline.
func (r *Routine) IsInline() bool { return r.raw.Inline }

// HasBody reports whether the routine has a recorded definition.
func (r *Routine) HasBody() bool { return r.pos.bb.Valid() }

// Callees returns the recorded call sites (the Figure 5 callvec).
func (r *Routine) Callees() []*Call { return r.callees }

// Callers returns the routines that call this one.
func (r *Routine) Callers() []*Routine { return r.callers }

// FullName renders the qualified routine name with its signature's
// parameter list, in the style printed by pdbtree.
func (r *Routine) FullName() string {
	name := r.raw.Name
	if c := r.ParentClass(); c != nil {
		name = c.FullName() + "::" + name
	} else if n := r.ParentNamespace(); n != nil && n.Name() != "" {
		name = namespaceFullName(n) + "::" + name
	}
	sig := r.Signature()
	if sig == nil {
		return name + "()"
	}
	out := name + "("
	for i, a := range sig.ArgumentTypes() {
		if i > 0 {
			out += ", "
		}
		if a != nil {
			out += a.Name()
		}
	}
	out += ")"
	return out
}
