package ductape

// Derived views over the class hierarchy and template instantiation
// links, used by the pdblint passes (internal/analysis) and available
// to any DUCTAPE client. All traversals cut inheritance cycles (which
// Validate flags, but hand-written or merged databases may contain)
// and return deterministic orders.

// AllBases returns every transitive base class in breadth-first order,
// nearest bases first. Unresolved base references (nil Class) are
// skipped; cycles are cut.
func (c *Class) AllBases() []*Class {
	var out []*Class
	seen := map[*Class]bool{c: true}
	frontier := []*Class{c}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, b := range next.bases {
			if b.Class == nil || seen[b.Class] {
				continue
			}
			seen[b.Class] = true
			out = append(out, b.Class)
			frontier = append(frontier, b.Class)
		}
	}
	return out
}

// AllDerived returns every transitive derived class in breadth-first
// order, nearest derivations first, cutting cycles.
func (c *Class) AllDerived() []*Class {
	var out []*Class
	seen := map[*Class]bool{c: true}
	frontier := []*Class{c}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, d := range next.derived {
			if seen[d] {
				continue
			}
			seen[d] = true
			out = append(out, d)
			frontier = append(frontier, d)
		}
	}
	return out
}

// IsPolymorphic reports whether the class declares or inherits a
// virtual member function.
func (c *Class) IsPolymorphic() bool {
	for _, f := range c.funcs {
		if f.IsVirtual() {
			return true
		}
	}
	for _, b := range c.AllBases() {
		for _, f := range b.funcs {
			if f.IsVirtual() {
				return true
			}
		}
	}
	return false
}

// VirtualFunctions returns the member functions recorded as virt or
// pure, in declaration order.
func (c *Class) VirtualFunctions() []*Routine {
	var out []*Routine
	for _, f := range c.funcs {
		if f.IsVirtual() {
			out = append(out, f)
		}
	}
	return out
}

// Destructor returns the class's recorded destructor, or nil when the
// database carries none (implicit destructors are not emitted).
func (c *Class) Destructor() *Routine {
	for _, f := range c.funcs {
		if f.Kind() == "dtor" {
			return f
		}
	}
	return nil
}

// InstantiationCount returns the number of entities (classes and
// routines) instantiated from this template — the quantity the paper's
// instantiation mode keeps small, and the one the template-bloat pass
// thresholds.
func (t *Template) InstantiationCount() int {
	return len(t.instClasses) + len(t.instRoutines)
}
