package ductape_test

import (
	"testing"

	"pdt/internal/ductape"
)

// TestAccessorSurface walks the full accessor surface of every item
// kind over a representative program, verifying the hierarchy's
// uniform attribute access (§3.3: "all information about these items
// is accessible through member functions").
func TestAccessorSurface(t *testing.T) {
	db := buildDB(t, `
#define LIMIT 64
namespace app {
    enum Mode { FAST, SLOW };
    typedef unsigned long size_type;
    template <class T>
    class Engine {
    public:
        Engine() : power(0) { }
        virtual ~Engine() { }
        void rev(const T & amount) { power += (int) amount; }
        static int shared;
    private:
        int power;
    };
    class Turbo : public Engine<double> {
    public:
        void boost() { rev(2.5); }
    };
}
int app_shared_init = 0;
int main() {
    app::Turbo t;
    t.boost();
    return 0;
}
`, nil)

	// Files.
	var mainFile *ductape.File
	for _, f := range db.Files() {
		if f.Prefix() != "so" {
			t.Errorf("file prefix = %q", f.Prefix())
		}
		if f.Name() == "main.cpp" {
			mainFile = f
		}
		_ = f.System()
	}
	if mainFile == nil {
		t.Fatal("main.cpp missing")
	}

	// Macros.
	macros := db.Macros()
	if len(macros) != 1 {
		t.Fatalf("macros = %d", len(macros))
	}
	m := macros[0]
	if m.Prefix() != "ma" || m.Name() != "LIMIT" || m.Kind() != "def" {
		t.Errorf("macro = %s %s %s", m.Prefix(), m.Name(), m.Kind())
	}
	if m.ParentClass() != nil || m.ParentNamespace() != nil || m.Access() != "NA" {
		t.Error("macro parent/access defaults")
	}
	if m.Text() == "" || !m.Location().Valid() {
		t.Error("macro text/location")
	}

	// Namespaces.
	var appNS *ductape.Namespace
	for _, n := range db.Namespaces() {
		if n.Name() == "app" {
			appNS = n
		}
	}
	if appNS == nil {
		t.Fatal("namespace app missing")
	}
	if appNS.Prefix() != "na" || appNS.ParentNamespace() != nil ||
		appNS.ParentClass() != nil || appNS.Access() != "NA" {
		t.Error("namespace attributes")
	}
	if appNS.AliasOf() != "" || len(appNS.Members()) == 0 {
		t.Error("namespace members/alias")
	}
	if appNS.HeaderBegin().Valid() || appNS.BodyEnd().Valid() {
		t.Error("namespaces carry no extents in the PDB")
	}

	// Templates.
	var engineT *ductape.Template
	for _, te := range db.Templates() {
		if te.Name() == "Engine" && te.Kind() == ductape.TE_CLASS {
			engineT = te
		}
	}
	if engineT == nil {
		t.Fatal("Engine template missing")
	}
	if engineT.Prefix() != "te" || engineT.ParentNamespace() == nil ||
		engineT.ParentNamespace().Name() != "app" {
		t.Errorf("template parent: %+v", engineT.ParentNamespace())
	}
	if !engineT.HeaderBegin().Valid() || !engineT.BodyEnd().Valid() {
		t.Error("template extents missing")
	}
	if len(engineT.InstantiatedClasses()) != 1 {
		t.Errorf("Engine instantiations = %d", len(engineT.InstantiatedClasses()))
	}

	// Classes.
	engine := db.LookupClass("Engine<double>")
	turbo := db.LookupClass("app::Turbo")
	if engine == nil || turbo == nil {
		t.Fatal("classes missing")
	}
	if engine.Prefix() != "cl" || !engine.IsInstantiation() || engine.IsSpecialization() {
		t.Error("Engine<double> attributes")
	}
	if engine.Template() != engineT {
		t.Error("Engine<double>.Template() link")
	}
	if turbo.ParentNamespace() == nil || turbo.FullName() != "app::Turbo" {
		t.Errorf("Turbo FullName = %q", turbo.FullName())
	}
	if len(turbo.BaseClasses()) != 1 || turbo.BaseClasses()[0].Class != engine {
		t.Error("Turbo bases")
	}
	if len(engine.DerivedClasses()) != 1 || engine.DerivedClasses()[0] != turbo {
		t.Error("Engine derived")
	}
	if !engine.HeaderBegin().Valid() || !engine.BodyEnd().Valid() {
		t.Error("class extents")
	}
	foundStatic := false
	for _, mem := range engine.DataMembers() {
		if mem.Name == "shared" && mem.Static {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("static data member lost")
	}

	// Routines.
	var rev, dtor *ductape.Routine
	for _, r := range engine.Functions() {
		switch {
		case r.Name() == "rev":
			rev = r
		case r.Kind() == "dtor":
			dtor = r
		}
	}
	if rev == nil || dtor == nil {
		t.Fatal("Engine methods missing")
	}
	if rev.Prefix() != "ro" || rev.ParentClass() != engine || rev.Access() != "pub" {
		t.Error("rev attributes")
	}
	if rev.Linkage() != "C++" || rev.Storage() != "NA" || rev.IsStatic() || rev.IsConst() {
		t.Error("rev characteristics")
	}
	if dtor.Virtuality() != "virt" || !dtor.IsVirtual() {
		t.Error("dtor virtuality")
	}
	if !rev.HasBody() || !rev.HeaderBegin().Valid() || !rev.BodyEnd().Valid() {
		t.Error("rev extents")
	}
	if rev.Template() == nil || rev.Template().Kind() != ductape.TE_MEMFUNC {
		t.Error("rev template origin")
	}
	if rev.IsSpecialization() {
		t.Error("rev is not a specialization")
	}

	// Types through the signature.
	sig := rev.Signature()
	if sig == nil || sig.Kind() != "func" {
		t.Fatal("rev signature")
	}
	if sig.Prefix() != "ty" || sig.Location().Valid() ||
		sig.ParentClass() != nil || sig.ParentNamespace() != nil || sig.Access() != "NA" {
		t.Error("type item attributes")
	}
	if sig.ReturnType() == nil || sig.ReturnType().Kind() != "void" {
		t.Error("return type")
	}
	if sig.HasEllipsis() {
		t.Error("ellipsis flag")
	}
	args := sig.ArgumentTypes()
	if len(args) != 1 || args[0].Kind() != "ref" {
		t.Fatal("arg types")
	}
	tref := args[0].Elem()
	if tref == nil || tref.Kind() != "tref" || !tref.IsConst() {
		t.Fatal("tref")
	}
	if tref.BaseType() == nil || tref.BaseType().Kind() != "double" {
		t.Error("tref base type")
	}
	if len(tref.Qualifiers()) != 1 {
		t.Error("qualifiers")
	}
	// Integer kind detail on an int type.
	for _, ty := range db.Types() {
		if ty.Kind() == "int" && ty.IntegerKind() != "int" {
			t.Errorf("yikind = %q", ty.IntegerKind())
		}
		if ty.Kind() == "array" && ty.ArrayLength() == 0 {
			t.Errorf("array length missing for %s", ty.Name())
		}
	}
}

// TestHierarchyAccessors exercises the derived hierarchy views used by
// the pdblint passes: transitive bases/derivations, polymorphism, and
// destructor lookup.
func TestHierarchyAccessors(t *testing.T) {
	db := buildDB(t, `
class Base {
public:
    Base() { }
    ~Base() { }
    virtual int id() const { return 0; }
};
class Mid : public Base {
public:
    Mid() { }
    int id() const { return 1; }
};
class Leaf : public Mid {
public:
    Leaf() { }
    int id() const { return 2; }
};
class Plain {
public:
    Plain() { }
    int tag() const { return 3; }
};
int main() {
    Leaf l;
    Plain p;
    return l.id() + p.tag();
}
`, nil)

	base := db.LookupClass("Base")
	leaf := db.LookupClass("Leaf")
	plain := db.LookupClass("Plain")
	if base == nil || leaf == nil || plain == nil {
		t.Fatal("classes missing")
	}

	bases := leaf.AllBases()
	if len(bases) != 2 || bases[0].Name() != "Mid" || bases[1].Name() != "Base" {
		t.Errorf("Leaf.AllBases() = %v", classNames(bases))
	}
	derived := base.AllDerived()
	if len(derived) != 2 || derived[0].Name() != "Mid" || derived[1].Name() != "Leaf" {
		t.Errorf("Base.AllDerived() = %v", classNames(derived))
	}
	if len(plain.AllBases()) != 0 || len(plain.AllDerived()) != 0 {
		t.Error("Plain should be isolated")
	}

	// Polymorphism is declared in Base and inherited by Leaf (whose id
	// override is implicitly virtual); Plain has no virtual functions.
	if !base.IsPolymorphic() || !leaf.IsPolymorphic() {
		t.Error("Base/Leaf should be polymorphic")
	}
	if plain.IsPolymorphic() {
		t.Error("Plain should not be polymorphic")
	}
	if len(base.VirtualFunctions()) != 1 {
		t.Errorf("Base.VirtualFunctions() = %d", len(base.VirtualFunctions()))
	}

	// Base has an explicit (non-virtual) destructor; Plain has none.
	d := base.Destructor()
	if d == nil || d.Kind() != "dtor" {
		t.Fatal("Base destructor missing")
	}
	if d.IsVirtual() {
		t.Error("Base destructor should be non-virtual")
	}
	if plain.Destructor() != nil {
		t.Error("Plain should have no recorded destructor")
	}
}

func classNames(cs []*ductape.Class) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name()
	}
	return out
}

// TestTemplateInstantiationCount checks the count the template-bloat
// pass thresholds: class instantiations plus member-function
// instantiations attributed to their templates.
func TestTemplateInstantiationCount(t *testing.T) {
	db := buildDB(t, `
template <class T, int N>
class Slot {
public:
    int cap() const { return N; }
};
int main() {
    int s = 0;
    { Slot<int, 1> a; s += a.cap(); }
    { Slot<int, 2> b; s += b.cap(); }
    { Slot<int, 3> c; s += c.cap(); }
    return s;
}
`, nil)
	var slot *ductape.Template
	for _, te := range db.Templates() {
		if te.Name() == "Slot" && te.Kind() == ductape.TE_CLASS {
			slot = te
		}
	}
	if slot == nil {
		t.Fatal("Slot template missing")
	}
	if got := slot.InstantiationCount(); got != len(slot.InstantiatedClasses()) ||
		got != 3 {
		t.Errorf("InstantiationCount = %d (classes %d)", got,
			len(slot.InstantiatedClasses()))
	}
}
