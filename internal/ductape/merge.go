package ductape

import (
	"fmt"

	"pdt/internal/cmap"
	"pdt/internal/pdb"
)

// Merge combines several program databases into one, eliminating
// duplicate template instantiations (and other entities compiled into
// more than one translation unit) in the process — the semantics of the
// paper's pdbmerge utility (Table 2).
//
// Matching keys: files by name; types by canonical spelling; templates
// by (name, kind, location); classes by full name; routines by
// (owner, name, signature spelling); namespaces by qualified name;
// macros by (name, kind, location). IDs are renumbered densely in the
// merged output.
func Merge(dbs ...*PDB) *PDB {
	m := newMerger()
	for _, db := range dbs {
		m.add(db)
	}
	return FromRaw(m.out)
}

type merger struct {
	out *pdb.PDB

	nextFile, nextType, nextTemplate          int
	nextClass, nextRoutine, nextNS, nextMacro int

	fileKeys     *cmap.Map[string, int]
	typeKeys     *cmap.Map[string, int]
	templateKeys *cmap.Map[string, int]
	classKeys    *cmap.Map[string, int]
	routineKeys  *cmap.Map[string, int]
	nsKeys       *cmap.Map[string, int]
	macroKeys    *cmap.Map[string, int]
}

func newMerger() *merger {
	return &merger{
		out:      &pdb.PDB{},
		fileKeys: cmap.NewString[int](), typeKeys: cmap.NewString[int](),
		templateKeys: cmap.NewString[int](), classKeys: cmap.NewString[int](),
		routineKeys: cmap.NewString[int](), nsKeys: cmap.NewString[int](),
		macroKeys: cmap.NewString[int](),
	}
}

// idMap carries per-source-db ID remappings.
type idMap struct {
	file, typ, template, class, routine, ns map[int]int
}

func (m *merger) add(db *PDB) {
	ids := idMap{
		file: map[int]int{}, typ: map[int]int{}, template: map[int]int{},
		class: map[int]int{}, routine: map[int]int{}, ns: map[int]int{},
	}

	// Pass 1: assign merged IDs for every item (matching or fresh).
	for _, f := range db.files {
		key := f.Name()
		id, ok := m.fileKeys.Get(key)
		if !ok {
			m.nextFile++
			id = m.nextFile
			m.fileKeys.Set(key, id)
			m.out.Files = append(m.out.Files, &pdb.SourceFile{
				ID: id, Name: f.raw.Name, System: f.raw.System})
		}
		ids.file[f.ID()] = id
	}
	for _, t := range db.types {
		key := t.raw.Kind + "|" + t.Name()
		id, ok := m.typeKeys.Get(key)
		if !ok {
			m.nextType++
			id = m.nextType
			m.typeKeys.Set(key, id)
			cp := *t.raw
			cp.ID = id
			m.out.Types = append(m.out.Types, &cp)
		}
		ids.typ[t.ID()] = id
	}
	for _, n := range db.namespaces {
		key := namespaceFullName(n)
		id, ok := m.nsKeys.Get(key)
		if !ok {
			m.nextNS++
			id = m.nextNS
			m.nsKeys.Set(key, id)
			cp := *n.raw
			cp.ID = id
			m.out.Namespaces = append(m.out.Namespaces, &cp)
		}
		ids.ns[n.ID()] = id
	}
	for _, t := range db.templates {
		key := fmt.Sprintf("%s|%s|%s", t.raw.Kind, t.Name(), t.Location())
		id, ok := m.templateKeys.Get(key)
		if !ok {
			m.nextTemplate++
			id = m.nextTemplate
			m.templateKeys.Set(key, id)
			cp := *t.raw
			cp.ID = id
			m.out.Templates = append(m.out.Templates, &cp)
		}
		ids.template[t.ID()] = id
	}
	for _, c := range db.classes {
		key := c.FullName()
		id, ok := m.classKeys.Get(key)
		if !ok {
			m.nextClass++
			id = m.nextClass
			m.classKeys.Set(key, id)
			cp := *c.raw
			cp.ID = id
			m.out.Classes = append(m.out.Classes, &cp)
		}
		ids.class[c.ID()] = id
	}
	for _, r := range db.routines {
		key := routineKey(r)
		id, ok := m.routineKeys.Get(key)
		if !ok {
			m.nextRoutine++
			id = m.nextRoutine
			m.routineKeys.Set(key, id)
			cp := *r.raw
			cp.ID = id
			m.out.Routines = append(m.out.Routines, &cp)
		}
		ids.routine[r.ID()] = id
	}
	for _, mc := range db.Macros() {
		key := fmt.Sprintf("%s|%s|%s", mc.Kind(), mc.Name(), mc.Location())
		if _, ok := m.macroKeys.Get(key); !ok {
			m.nextMacro++
			m.macroKeys.Set(key, m.nextMacro)
			cp := *mc.raw
			cp.ID = m.nextMacro
			// Remap the location here (macros have no pass-2 rewrite):
			// a stale file ref would point into the source db's ID space
			// and corrupt the dedup key of any subsequent merge.
			cp.Loc = remapLocFiles(cp.Loc, ids.file)
			m.out.Macros = append(m.out.Macros, &cp)
		}
	}

	// Pass 2: rewrite the references of the items newly copied from
	// this db. (Matched duplicates keep the references of their first
	// appearance; the merge prefers richer items, so when the incoming
	// duplicate has a body/calls and the existing one does not, it
	// replaces the payload.)
	m.rewriteRefs(db, ids)
}

func routineKey(r *Routine) string {
	owner := ""
	if c := r.ParentClass(); c != nil {
		owner = "cl:" + c.FullName()
	} else if n := r.ParentNamespace(); n != nil {
		owner = "na:" + namespaceFullName(n)
	}
	sig := ""
	if s := r.Signature(); s != nil {
		sig = s.Name()
	}
	return owner + "|" + r.Name() + "|" + sig
}

// remapRef rewrites one reference through a per-source-db ID table.
func remapRef(ref pdb.Ref, table map[int]int) pdb.Ref {
	if !ref.Valid() {
		return pdb.Ref{}
	}
	if nid, ok := table[ref.ID]; ok {
		return pdb.Ref{Prefix: ref.Prefix, ID: nid}
	}
	return pdb.Ref{}
}

// remapLocFiles is the file-reference rewrite shared by pass 1
// (macros) and pass 2 (everything else).
func remapLocFiles(l pdb.Loc, files map[int]int) pdb.Loc {
	if !l.Valid() {
		return pdb.Loc{}
	}
	return pdb.Loc{File: remapRef(l.File, files), Line: l.Line, Col: l.Col}
}

func (m *merger) rewriteRefs(db *PDB, ids idMap) {
	remapLoc := func(l pdb.Loc) pdb.Loc { return remapLocFiles(l, ids.file) }
	remapPos := func(p pdb.Pos) pdb.Pos {
		return pdb.Pos{
			HeaderBegin: remapLoc(p.HeaderBegin), HeaderEnd: remapLoc(p.HeaderEnd),
			BodyBegin: remapLoc(p.BodyBegin), BodyEnd: remapLoc(p.BodyEnd),
		}
	}

	for _, f := range db.files {
		dst := m.out.FileByID(ids.file[f.ID()])
		if len(dst.Includes) > 0 {
			continue // already populated by a previous unit
		}
		for _, inc := range f.raw.Includes {
			dst.Includes = append(dst.Includes, remapRef(inc, ids.file))
		}
	}
	for _, t := range db.types {
		dst := m.out.TypeByID(ids.typ[t.ID()])
		if dst.Elem.Valid() || dst.Ret.Valid() || dst.Tref.Valid() ||
			dst.Class.Valid() || len(dst.Args) > 0 {
			// References already rewritten for this merged type.
			if dst.Elem.ID != 0 || dst.Ret.ID != 0 {
				continue
			}
		}
		dst.Elem = remapRef(t.raw.Elem, ids.typ)
		dst.Tref = remapRef(t.raw.Tref, ids.typ)
		dst.Class = remapRef(t.raw.Class, ids.class)
		dst.Enum = t.raw.Enum
		dst.Ret = remapRef(t.raw.Ret, ids.typ)
		dst.Args = nil
		for _, a := range t.raw.Args {
			dst.Args = append(dst.Args, remapRef(a, ids.typ))
		}
	}
	for _, n := range db.namespaces {
		dst := m.out.NamespaceByID(ids.ns[n.ID()])
		dst.Parent = remapRef(n.raw.Parent, ids.ns)
		dst.Loc = remapLoc(n.raw.Loc)
		// Union the member lists.
		seen := map[string]bool{}
		for _, mem := range dst.Members {
			seen[mem] = true
		}
		for _, mem := range n.raw.Members {
			if !seen[mem] {
				dst.Members = append(dst.Members, mem)
				seen[mem] = true
			}
		}
	}
	for _, t := range db.templates {
		dst := m.out.TemplateByID(ids.template[t.ID()])
		dst.Loc = remapLoc(t.raw.Loc)
		dst.Class = remapRef(t.raw.Class, ids.class)
		dst.Namespace = remapRef(t.raw.Namespace, ids.ns)
		dst.Pos = remapPos(t.raw.Pos)
	}
	for _, c := range db.classes {
		dst := m.out.ClassByID(ids.class[c.ID()])
		richer := len(c.raw.Funcs) >= len(dst.Funcs)
		if !richer {
			continue
		}
		dst.Loc = remapLoc(c.raw.Loc)
		dst.Parent = remapRef(c.raw.Parent, ids.class)
		dst.Namespace = remapRef(c.raw.Namespace, ids.ns)
		dst.Template = remapRef(c.raw.Template, ids.template)
		dst.Pos = remapPos(c.raw.Pos)
		dst.Bases = nil
		for _, b := range c.raw.Bases {
			dst.Bases = append(dst.Bases, pdb.BaseClass{Access: b.Access,
				Virtual: b.Virtual, Class: remapRef(b.Class, ids.class),
				Loc: remapLoc(b.Loc)})
		}
		dst.Friends = c.raw.Friends
		dst.Funcs = nil
		for _, fr := range c.raw.Funcs {
			dst.Funcs = append(dst.Funcs, pdb.FuncRef{
				Routine: remapRef(fr.Routine, ids.routine), Loc: remapLoc(fr.Loc)})
		}
		dst.Members = nil
		for _, mem := range c.raw.Members {
			cp := mem
			cp.Loc = remapLoc(mem.Loc)
			cp.Type = remapRef(mem.Type, ids.typ)
			dst.Members = append(dst.Members, cp)
		}
	}
	for _, r := range db.routines {
		dst := m.out.RoutineByID(ids.routine[r.ID()])
		// Prefer the definition (with body and calls) over a bare
		// declaration when units disagree.
		richer := r.raw.Pos.BodyBegin.Valid() || len(r.raw.Calls) >= len(dst.Calls)
		if dst.Pos.BodyBegin.Valid() && !r.raw.Pos.BodyBegin.Valid() {
			richer = false
		}
		if !richer {
			continue
		}
		dst.Loc = remapLoc(r.raw.Loc)
		dst.Class = remapRef(r.raw.Class, ids.class)
		dst.Namespace = remapRef(r.raw.Namespace, ids.ns)
		dst.Signature = remapRef(r.raw.Signature, ids.typ)
		dst.Template = remapRef(r.raw.Template, ids.template)
		dst.Pos = remapPos(r.raw.Pos)
		dst.Calls = nil
		for _, cs := range r.raw.Calls {
			dst.Calls = append(dst.Calls, pdb.Call{
				Callee:  remapRef(cs.Callee, ids.routine),
				Virtual: cs.Virtual,
				Loc:     remapLoc(cs.Loc),
			})
		}
	}
}
