package ductape_test

import (
	"strings"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdb"
)

// cyclicRaw builds a raw database with an inheritance cycle A -> B ->
// C -> A, an unresolved base on B (cl#99 exists nowhere), and a
// virtual function on C — the pathological shape merged or
// hand-written databases can take, which the accessors must survive.
func cyclicRaw() *pdb.PDB {
	clRef := func(id int) pdb.Ref { return pdb.Ref{Prefix: pdb.PrefixClass, ID: id} }
	base := func(id int) pdb.BaseClass {
		return pdb.BaseClass{Access: "pub", Class: clRef(id)}
	}
	return &pdb.PDB{
		Routines: []*pdb.Routine{
			{ID: 1, Name: "spin", Access: "pub", Virtual: "virt", Kind: "fun",
				Class: clRef(3)},
		},
		Classes: []*pdb.Class{
			{ID: 1, Name: "A", Kind: "class", Bases: []pdb.BaseClass{base(2)}},
			{ID: 2, Name: "B", Kind: "class", Bases: []pdb.BaseClass{base(3), base(99)}},
			{ID: 3, Name: "C", Kind: "class", Bases: []pdb.BaseClass{base(1)},
				Funcs: []pdb.FuncRef{{Routine: pdb.Ref{Prefix: pdb.PrefixRoutine, ID: 1}}}},
		},
	}
}

func baseNames(c *ductape.Class) string {
	var names []string
	for _, b := range c.AllBases() {
		names = append(names, b.Name())
	}
	return strings.Join(names, ",")
}

// TestAllBasesCycleWithNilBases: AllBases on a cyclic hierarchy with
// unresolved (nil) bases must terminate, skip the nil, cut the cycle,
// and return the same order every call.
func TestAllBasesCycleWithNilBases(t *testing.T) {
	db := ductape.FromRaw(cyclicRaw())
	classes := db.Classes()
	if len(classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(classes))
	}
	byName := map[string]*ductape.Class{}
	for _, c := range classes {
		byName[c.Name()] = c
	}

	want := map[string]string{
		"A": "B,C", // A -> B -> (C, nil#99); C -> A is the cut edge
		"B": "C,A",
		"C": "A,B",
	}
	for name, c := range byName {
		got := baseNames(c)
		if got != want[name] {
			t.Errorf("AllBases(%s) = %q, want %q", name, got, want[name])
		}
		// Determinism across repeated traversals of the same graph.
		for i := 0; i < 5; i++ {
			if again := baseNames(c); again != got {
				t.Fatalf("AllBases(%s) nondeterministic: %q then %q", name, got, again)
			}
		}
	}

	// The unresolved base is visible in the direct view as a nil Class.
	var sawNil bool
	for _, b := range byName["B"].BaseClasses() {
		sawNil = sawNil || b.Class == nil
	}
	if !sawNil {
		t.Error("unresolved base cl#99 not surfaced as a nil Class in BaseClasses")
	}
}

// TestIsPolymorphicCycle: the virtual function on C must make the
// whole cycle polymorphic — including via the inherited-through-cycle
// paths — without looping forever.
func TestIsPolymorphicCycle(t *testing.T) {
	db := ductape.FromRaw(cyclicRaw())
	for _, c := range db.Classes() {
		if !c.IsPolymorphic() {
			t.Errorf("%s.IsPolymorphic() = false inside a cycle containing a virtual function", c.Name())
		}
	}
}

// TestAllDerivedCycle: the reverse traversal shares the cycle-cutting
// discipline.
func TestAllDerivedCycle(t *testing.T) {
	db := ductape.FromRaw(cyclicRaw())
	for _, c := range db.Classes() {
		if got := len(c.AllDerived()); got != 2 {
			t.Errorf("AllDerived(%s) = %d classes, want the 2 others", c.Name(), got)
		}
	}
}

// TestAllBasesCycleAfterMerge: merging two databases that each carry
// the cycle must keep the traversals terminating and deterministic on
// the merged graph.
func TestAllBasesCycleAfterMerge(t *testing.T) {
	a := ductape.FromRaw(cyclicRaw())
	b := ductape.FromRaw(cyclicRaw())
	merged := ductape.Merge(a, b)

	var first string
	for i := 0; i < 3; i++ {
		var sb strings.Builder
		for _, c := range merged.Classes() {
			sb.WriteString(c.Name() + ":" + baseNames(c) + ";")
			if !c.IsPolymorphic() {
				t.Errorf("merged %s.IsPolymorphic() = false", c.Name())
			}
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Fatalf("merged traversal nondeterministic: %q then %q", first, sb.String())
		}
	}
}
