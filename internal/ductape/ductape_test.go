package ductape_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
)

// buildDB compiles src and wraps the PDB in the DUCTAPE API.
func buildDB(t *testing.T, src string, extra map[string]string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Errorf("diagnostic: %v", d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

const stackSrc = `
#include <vector>
class Overflow { };
template <class Object>
class Stack {
public:
    bool isEmpty() const;
    bool isFull() const;
    void push(const Object & x);
private:
    vector<Object> theArray;
    int topOfStack;
};
template <class Object>
bool Stack<Object>::isEmpty() const { return topOfStack == -1; }
template <class Object>
bool Stack<Object>::isFull() const { return topOfStack == theArray.size() - 1; }
template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}
int main() {
    Stack<int> s;
    s.push(3);
    return s.isEmpty() ? 0 : 1;
}
`

// TestHierarchyInterfaces is experiment E5 (Figure 4): the concrete
// types satisfy exactly the interface layers the paper's class
// hierarchy prescribes.
func TestHierarchyInterfaces(t *testing.T) {
	db := buildDB(t, stackSrc, nil)
	// Every concrete type slots into the Figure 4 hierarchy.
	items := db.Items()
	if len(items) == 0 {
		t.Fatal("no items")
	}
	var nItem, nFat, nTmpl int
	for _, it := range items {
		if _, ok := it.(ductape.Item); ok {
			nItem++
		}
		if _, ok := it.(ductape.FatItem); ok {
			nFat++
		}
		if _, ok := it.(ductape.TemplateItem); ok {
			nTmpl++
		}
	}
	if nItem == 0 || nFat == 0 || nTmpl == 0 {
		t.Errorf("hierarchy counts: item=%d fat=%d tmpl=%d", nItem, nFat, nTmpl)
	}
	// Files are SimpleItems but not Items.
	var fileAsAny interface{} = db.Files()[0]
	if _, ok := fileAsAny.(ductape.Item); ok {
		t.Error("File must not satisfy Item (it has no location/parent)")
	}
	// Types are Items but not FatItems.
	var typeAsAny interface{} = db.Types()[0]
	if _, ok := typeAsAny.(ductape.Item); !ok {
		t.Error("Type must satisfy Item")
	}
	if _, ok := typeAsAny.(ductape.FatItem); ok {
		t.Error("Type must not satisfy FatItem")
	}
	// Classes and routines are TemplateItems.
	var clsAsAny interface{} = db.Classes()[0]
	if _, ok := clsAsAny.(ductape.TemplateItem); !ok {
		t.Error("Class must satisfy TemplateItem")
	}
	var roAsAny interface{} = db.Routines()[0]
	if _, ok := roAsAny.(ductape.TemplateItem); !ok {
		t.Error("Routine must satisfy TemplateItem")
	}
}

func TestTemplateInstancesHeterogeneousList(t *testing.T) {
	db := buildDB(t, stackSrc, nil)
	// "list<pdbTemplateItem> can store a list of all template
	// instantiations."
	var insts []ductape.TemplateItem
	for _, it := range db.TemplateItems() {
		if it.IsInstantiation() {
			insts = append(insts, it)
		}
	}
	names := map[string]bool{}
	for _, it := range insts {
		names[it.Name()] = true
	}
	if !names["Stack<int>"] || !names["push"] {
		t.Errorf("instantiations = %v", names)
	}
}

func TestNavigation(t *testing.T) {
	db := buildDB(t, stackSrc, nil)
	cls := db.LookupClass("Stack<int>")
	if cls == nil {
		t.Fatal("Stack<int> missing")
	}
	if !cls.IsInstantiation() || cls.Template() == nil || cls.Template().Name() != "Stack" {
		t.Errorf("template link broken: %+v", cls.Template())
	}
	// Member types navigate to the class object.
	var theArray *ductape.Member
	for i := range cls.DataMembers() {
		if cls.DataMembers()[i].Name == "theArray" {
			theArray = &cls.DataMembers()[i]
		}
	}
	if theArray == nil || theArray.Type == nil {
		t.Fatal("theArray missing or untyped")
	}
	vecCls := theArray.Type.Class()
	if vecCls == nil || vecCls.Name() != "vector<int>" {
		t.Errorf("theArray type class = %+v", vecCls)
	}
	// Routine navigation: push → signature → argument types.
	var push *ductape.Routine
	for _, r := range cls.Functions() {
		if r.Name() == "push" {
			push = r
		}
	}
	if push == nil {
		t.Fatal("push missing")
	}
	if push.FullName() != "Stack<int>::push(const int &)" {
		t.Errorf("FullName = %q", push.FullName())
	}
	sig := push.Signature()
	args := sig.ArgumentTypes()
	if len(args) != 1 || args[0].Kind() != "ref" {
		t.Fatalf("args = %+v", args)
	}
	if base := args[0].Elem(); base == nil || !base.IsConst() {
		t.Errorf("arg elem = %+v", base)
	}
	// Callees and callers.
	foundIsFull := false
	for _, call := range push.Callees() {
		if call.Call().Name() == "isFull" {
			foundIsFull = true
			if len(call.Call().Callers()) == 0 {
				t.Error("isFull should know its callers")
			}
		}
	}
	if !foundIsFull {
		t.Error("push callees missing isFull")
	}
}

func TestInclusionTree(t *testing.T) {
	db := buildDB(t, `#include "a.h"`+"\nint main() { return 0; }\n",
		map[string]string{
			"a.h": `#include "b.h"` + "\nint aa;\n",
			"b.h": "int bb;\n",
		})
	roots := db.RootFiles()
	if len(roots) != 1 || roots[0].Name() != "main.cpp" {
		t.Fatalf("roots = %v", names(roots))
	}
	if len(roots[0].Includes()) != 1 || roots[0].Includes()[0].Name() != "a.h" {
		t.Errorf("main includes = %v", names(roots[0].Includes()))
	}
	a := db.LookupFile("a.h")
	if len(a.Includes()) != 1 || a.Includes()[0].Name() != "b.h" {
		t.Errorf("a.h includes = %v", names(a.Includes()))
	}
	b := db.LookupFile("b.h")
	if len(b.IncludedBy()) != 1 || b.IncludedBy()[0].Name() != "a.h" {
		t.Errorf("b.h includedBy = %v", names(b.IncludedBy()))
	}
}

func names(fs []*ductape.File) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Name())
	}
	return out
}

func TestClassHierarchyView(t *testing.T) {
	db := buildDB(t, `
class A { };
class B : public A { };
class C : public B { };
class D : public A { };
`, nil)
	a := db.LookupClass("A")
	if len(a.DerivedClasses()) != 2 {
		t.Errorf("A derived = %d", len(a.DerivedClasses()))
	}
	roots := db.RootClasses()
	rootNames := map[string]bool{}
	for _, c := range roots {
		rootNames[c.Name()] = true
	}
	if !rootNames["A"] || rootNames["B"] {
		t.Errorf("roots = %v", rootNames)
	}
	b := db.LookupClass("B")
	if len(b.BaseClasses()) != 1 || b.BaseClasses()[0].Class.Name() != "A" {
		t.Errorf("B bases = %+v", b.BaseClasses())
	}
}

func TestCallTreeRoots(t *testing.T) {
	db := buildDB(t, stackSrc, nil)
	roots := db.RootRoutines()
	if len(roots) == 0 || roots[0].Name() != "main" {
		var ns []string
		for _, r := range roots {
			ns = append(ns, r.FullName())
		}
		t.Errorf("call tree roots = %v", ns)
	}
}

func TestWriteReadStable(t *testing.T) {
	db := buildDB(t, stackSrc, nil)
	var sb strings.Builder
	if err := db.Write(&sb); err != nil {
		t.Fatal(err)
	}
	db2, err := ductape.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var sb2 strings.Builder
	if err := db2.Write(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("write/read/write is not stable")
	}
}

func TestMergeDeduplicatesInstantiations(t *testing.T) {
	// Two translation units both instantiate Stack<int> from the same
	// header; the merge keeps one copy (Table 2's pdbmerge).
	hdr := `#ifndef S_H
#define S_H
template <class T> class Stack {
public:
    void push(const T & x) { n++; }
    int n;
};
#endif
`
	build := func(mainSrc string) *ductape.PDB {
		return buildDB(t, mainSrc, map[string]string{"s.h": hdr})
	}
	db1 := build(`#include "s.h"` + "\nvoid f1() { Stack<int> s; s.push(1); }\n")
	db2 := build(`#include "s.h"` + "\nvoid f2() { Stack<int> s; s.push(2); }\nvoid g2() { Stack<double> d; d.push(0.5); }\n")

	merged := ductape.Merge(db1, db2)

	count := func(name string) int {
		n := 0
		for _, c := range merged.Classes() {
			if c.Name() == name {
				n++
			}
		}
		return n
	}
	if count("Stack<int>") != 1 {
		t.Errorf("Stack<int> appears %d times after merge", count("Stack<int>"))
	}
	if count("Stack<double>") != 1 {
		t.Errorf("Stack<double> appears %d times", count("Stack<double>"))
	}
	// Both entry functions survive.
	if merged.LookupRoutine("f1") == nil || merged.LookupRoutine("f2") == nil {
		t.Error("merge lost translation-unit routines")
	}
	// push instantiation deduplicated.
	pushes := 0
	for _, r := range merged.Routines() {
		if r.Name() == "push" && r.ParentClass() != nil && r.ParentClass().Name() == "Stack<int>" {
			pushes++
		}
	}
	if pushes != 1 {
		t.Errorf("Stack<int>::push appears %d times", pushes)
	}
	// Templates deduplicated.
	stacks := 0
	for _, tm := range merged.Templates() {
		if tm.Name() == "Stack" && tm.Kind() == ductape.TE_CLASS {
			stacks++
		}
	}
	if stacks != 1 {
		t.Errorf("Stack template appears %d times", stacks)
	}
	// Merged output still parses.
	var sb strings.Builder
	if err := merged.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := ductape.Read(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("merged PDB unreadable: %v", err)
	}
}

func TestMergePrefersDefinitions(t *testing.T) {
	// Unit 1 sees only a declaration of helper; unit 2 has the
	// definition. The merge must keep the definition.
	db1 := buildDB(t, "void helper(int x);\nvoid a() { helper(1); }\n", nil)
	db2 := buildDB(t, "void helper(int x) { int y = x; }\nvoid b() { helper(2); }\n", nil)
	merged := ductape.Merge(db1, db2)
	h := merged.LookupRoutine("helper")
	if h == nil {
		t.Fatal("helper lost")
	}
	if !h.HasBody() {
		t.Error("merge kept the bodyless declaration")
	}
}

// TestMergedOutputValidates checks that pdbmerge output preserves
// referential integrity.
func TestMergedOutputValidates(t *testing.T) {
	hdr := `#ifndef M_H
#define M_H
template <class T> class Shared { public: T v; int get() { return 1; } };
#endif
`
	db1 := buildDB(t, "#include \"m.h\"\nvoid u1() { Shared<int> s; s.get(); }\n",
		map[string]string{"m.h": hdr})
	db2 := buildDB(t, "#include \"m.h\"\nvoid u2() { Shared<double> s; s.get(); }\n",
		map[string]string{"m.h": hdr})
	merged := ductape.Merge(db1, db2)
	if errs := merged.Raw().Validate(); len(errs) != 0 {
		t.Errorf("merged PDB invalid: %d violations, first: %v", len(errs), errs[0])
	}
}
