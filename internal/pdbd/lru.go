package pdbd

import (
	"container/list"
	"sync"
)

// memCache is the in-memory tier of the result cache: a sharded LRU
// over rendered responses. Sharding by key keeps lock contention off
// the request path when many clients hit the daemon at once; each
// shard is an independent mutex + map + recency list.
const memShards = 16

type memCache struct {
	perShard int
	shards   [memShards]memShard
}

type memShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type memItem struct {
	key string
	ent *entry
}

// newMemCache builds the tier with room for capacity entries in total
// (minimum one per shard).
func newMemCache(capacity int) *memCache {
	per := capacity / memShards
	if per < 1 {
		per = 1
	}
	c := &memCache{perShard: per}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// shard picks the shard for a key. Keys are hex SHA-256 strings, so
// any byte is uniformly distributed; fold the first two.
func (c *memCache) shard(key string) *memShard {
	var h uint8
	if len(key) >= 2 {
		h = key[0] ^ key[1]
	} else if len(key) == 1 {
		h = key[0]
	}
	return &c.shards[h%memShards]
}

// get returns the cached entry and bumps its recency.
func (c *memCache) get(key string) (*entry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*memItem).ent, true
}

// put inserts (or refreshes) an entry, evicting the least recently
// used one when the shard is full.
func (c *memCache) put(key string, e *entry) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*memItem).ent = e
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&memItem{key: key, ent: e})
	if s.order.Len() > c.perShard {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*memItem).key)
	}
}

// remove drops an entry if present.
func (c *memCache) remove(key string) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.Remove(el)
		delete(s.items, key)
	}
}

// snapshot returns every (key, entry) pair across the shards — the
// iteration seam reload-time invalidation uses. Entries are copied out
// under the shard locks; the caller mutates via put/remove afterwards.
func (c *memCache) snapshot() map[string]*entry {
	out := make(map[string]*entry)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.items {
			out[k] = el.Value.(*memItem).ent
		}
		s.mu.Unlock()
	}
	return out
}

// len reports the number of cached entries.
func (c *memCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
