package pdbd

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdt/internal/obs"
	"pdt/internal/taustream"
)

func profileBatch() []byte {
	return taustream.AppendBatch(nil, []taustream.Event{
		{Kind: taustream.KindRunStart, Unit: taustream.UnitSteps},
		{Kind: taustream.KindSample, Name: "push() Stack<int>", Calls: 2, Inclusive: 8, Exclusive: 5},
		{Kind: taustream.KindEdge, Parent: "main()", Name: "push() Stack<int>", Calls: 2, Inclusive: 8},
		{Kind: taustream.KindRunEnd, Dropped: 1},
	})
}

func postBatch(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/profile/ingest", "application/x-pdt-taustream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func TestProfileIngestAndServe(t *testing.T) {
	s, _ := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any run: an empty but well-formed profile.
	code, body, tier := get(t, ts.URL+"/v1/profile")
	if code != http.StatusOK || tier != "miss" {
		t.Fatalf("empty profile: %d, tier %q", code, tier)
	}
	for _, want := range []string{`"schema_version"`, `"runs": 0`, `"timers": []`} {
		if !strings.Contains(body, want) {
			t.Errorf("empty profile missing %s:\n%s", want, body)
		}
	}

	code, body = postBatch(t, ts.URL, profileBatch())
	if code != http.StatusOK {
		t.Fatalf("ingest = %d:\n%s", code, body)
	}
	for _, want := range []string{`"schema_version"`, `"events": 4`, `"runs": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("ingest response missing %s:\n%s", want, body)
		}
	}

	code, body, tier = get(t, ts.URL+"/v1/profile")
	if code != http.StatusOK || tier != "miss" {
		t.Fatalf("profile after ingest: %d, tier %q", code, tier)
	}
	for _, want := range []string{`"unit": "steps"`, `"runs": 1`, `"dropped_by_clients": 1`,
		"push() Stack<int>", `"parent": "main()"`, `"name": "Stack<int>"`} {
		if !strings.Contains(body, want) {
			t.Errorf("profile missing %s:\n%s", want, body)
		}
	}

	// Unchanged aggregate: the renderer memo answers ("mem"), body
	// identical.
	_, body2, tier := get(t, ts.URL+"/v1/profile")
	if tier != "mem" || body2 != body {
		t.Errorf("repeat: tier %q, bodies equal %v", tier, body2 == body)
	}
	if got := s.metrics.Snapshot().Counters["profile.memo_hits"]; got == 0 {
		t.Error("memo hit not counted")
	}

	// New events invalidate the memo.
	postBatch(t, ts.URL, profileBatch())
	_, body3, tier := get(t, ts.URL+"/v1/profile")
	if tier != "miss" || !strings.Contains(body3, `"runs": 2`) {
		t.Errorf("after second ingest: tier %q\n%s", tier, body3)
	}

	// The HTML dashboard renders the same aggregate.
	code, page, _ := get(t, ts.URL+"/v1/profile/html")
	if code != http.StatusOK {
		t.Fatalf("html = %d", code)
	}
	for _, want := range []string{`<div class="tau-profile">`, "Stack&lt;int&gt;", "2 run(s)"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q:\n%s", want, page)
		}
	}
}

func TestProfileIngestMalformed(t *testing.T) {
	s, _ := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postBatch(t, ts.URL, []byte("garbage"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed ingest = %d, want 400:\n%s", code, body)
	}
	if !strings.Contains(body, `"error"`) || !strings.Contains(body, "malformed") {
		t.Errorf("error envelope: %s", body)
	}
	if _, b, _ := get(t, ts.URL+"/v1/profile"); !strings.Contains(b, `"runs": 0`) {
		t.Errorf("malformed ingest mutated the aggregate:\n%s", b)
	}
}

// TestProfileIngestBodyCap pins the request-body bound: an oversized
// batch is refused with the bad-request envelope naming the cap, and
// the connection-level reader stops at the limit.
func TestProfileIngestBodyCap(t *testing.T) {
	path := t.TempDir() + "/corpus.pdb"
	saveRaw(t, path, testRaw(false))
	s, err := New(context.Background(), Config{
		Paths:          []string{path},
		Metrics:        obs.New("pdbd-test"),
		IngestMaxBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postBatch(t, ts.URL, bytes.Repeat([]byte{0xee}, 1024))
	if code != http.StatusBadRequest {
		t.Fatalf("oversized ingest = %d, want 400:\n%s", code, body)
	}
	if !strings.Contains(body, "64-byte cap") {
		t.Errorf("cap not named: %s", body)
	}

	// A batch under the cap still lands.
	small := taustream.AppendBatch(nil, []taustream.Event{{Kind: taustream.KindRunStart}})
	if code, body := postBatch(t, ts.URL, small); code != http.StatusOK {
		t.Fatalf("small ingest = %d:\n%s", code, body)
	}
}

// TestHTTPServerHardened pins the slowloris fix: the server the daemon
// actually runs carries header/read/write/idle timeouts.
func TestHTTPServerHardened(t *testing.T) {
	s, _ := newTestServer(t, testRaw(false), "")
	hs := s.HTTPServer()
	if hs.Handler == nil {
		t.Fatal("no handler")
	}
	if hs.ReadHeaderTimeout != ReadHeaderTimeout || hs.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != ReadTimeout || hs.ReadTimeout <= 0 {
		t.Errorf("ReadTimeout = %v", hs.ReadTimeout)
	}
	if hs.WriteTimeout != WriteTimeout || hs.WriteTimeout <= 0 {
		t.Errorf("WriteTimeout = %v", hs.WriteTimeout)
	}
	if hs.IdleTimeout != IdleTimeout || hs.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v", hs.IdleTimeout)
	}
}

// TestProfileSurvivesReload pins the reload semantics: profiles
// describe program runs, not the corpus, so a corpus reload leaves the
// aggregate (and the live dashboards) intact while the fingerprint
// header moves with the corpus.
func TestProfileSurvivesReload(t *testing.T) {
	raw := testRaw(false)
	s, path := newTestServer(t, raw, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postBatch(t, ts.URL, profileBatch())
	_, before, _ := get(t, ts.URL+"/v1/profile")

	saveRaw(t, path, testRaw(true)) // change the corpus on disk
	if _, err := s.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, after, tier := get(t, ts.URL+"/v1/profile")
	if after != before {
		t.Errorf("reload changed the profile:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if tier != "mem" {
		t.Errorf("tier after reload = %q, want mem (epoch unchanged)", tier)
	}
}
