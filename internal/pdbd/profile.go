package pdbd

// Live-profile endpoints: the daemon side of internal/taustream.
// Instrumented programs (taurun -stream) POST length-framed profile
// event batches to /v1/profile/ingest; the aggregate is served as
// flat + call-path JSON (/v1/profile) and as a pdbhtml-style
// dashboard fragment (/v1/profile/html).
//
// Unlike the corpus endpoints, profile responses are not keyed into
// the content-addressed result cache: their content is a function of
// the live event stream, not of the corpus fingerprint, so a
// fingerprint-keyed entry would serve stale profiles forever. They
// get the same warm-path treatment a different way — each renderer
// memoizes its body on the aggregator epoch, so an idle dashboard
// polled by many clients renders once per state change — and a
// corpus reload deliberately leaves the aggregate untouched (the
// profile describes program runs, not the database).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"pdt/internal/corpus"
	"pdt/internal/schema"
	"pdt/internal/taustream"
)

// DefaultIngestMaxBytes caps one ingest request body (8 MiB ≈ two
// million framed events — far beyond any sane batch) unless the
// config overrides it.
const DefaultIngestMaxBytes = 8 << 20

func (s *Server) handleProfileIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("ingest.requests").Add(1)
	body := http.MaxBytesReader(w, r.Body, s.ingestMax)
	n, err := s.profile.Ingest(body)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			err = fmt.Errorf("%w: ingest body exceeds the %d-byte cap", corpus.ErrBadRequest, mbe.Limit)
		case errors.Is(err, taustream.ErrMalformed):
			err = fmt.Errorf("%w: %v", corpus.ErrBadRequest, err)
		}
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		SchemaVersion int    `json:"schema_version"`
		Events        int    `json:"events"`
		Runs          uint64 `json:"runs"`
	}{schema.Version, n, s.profile.Snapshot().Runs})
}

// liveMemo caches one rendered live-profile body keyed by the
// aggregator epoch it was rendered at.
type liveMemo struct {
	mu    sync.Mutex
	valid bool
	epoch uint64
	body  []byte
}

// serveLive answers one live-profile request: render at most once per
// aggregator epoch, stamping the same cache-disposition and
// fingerprint headers the corpus endpoints use ("mem" = memoized body
// reused, "miss" = rendered now).
func (s *Server) serveLive(w http.ResponseWriter, memo *liveMemo, contentType string,
	render func(*taustream.Snapshot) ([]byte, error)) {

	w.Header().Set("X-Pdbd-Fingerprint", s.st.Load().fingerprint)

	memo.mu.Lock()
	defer memo.mu.Unlock()
	epoch := s.profile.Epoch()
	tier := "mem"
	if !memo.valid || memo.epoch != epoch {
		body, err := render(s.profile.Snapshot())
		if err != nil {
			s.fail(w, err)
			return
		}
		memo.valid, memo.epoch, memo.body = true, epoch, body
		tier = "miss"
		s.metrics.Counter("profile.rendered").Add(1)
	} else {
		s.metrics.Counter("profile.memo_hits").Add(1)
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Pdbd-Cache", tier)
	_, _ = w.Write(memo.body)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.serveLive(w, &s.profileJSON, "application/json", func(snap *taustream.Snapshot) ([]byte, error) {
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func (s *Server) handleProfileHTML(w http.ResponseWriter, r *http.Request) {
	s.serveLive(w, &s.profileHTML, "text/html; charset=utf-8", func(snap *taustream.Snapshot) ([]byte, error) {
		var buf bytes.Buffer
		if err := taustream.WriteHTML(&buf, snap); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}
