package pdbd

import (
	"context"
	"encoding/json"
	"errors"

	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/schema"
)

// entry is one cached response: the rendered body plus the metadata
// the cache needs to serve it (content type) and to invalidate or
// carry it across a corpus reload (endpoint, params, node keys,
// global). The JSON encoding is the on-disk payload format inside the
// durable journal, which adds its own self-verifying header.
type entry struct {
	SchemaVersion int      `json:"schema_version"`
	Endpoint      string   `json:"endpoint"`
	Params        []string `json:"params"`
	NodeKeys      []string `json:"node_keys,omitempty"`
	Global        bool     `json:"global,omitempty"`
	ContentType   string   `json:"content_type"`
	Body          []byte   `json:"body"`
}

// cacheKey derives the content-addressed key of a response: the
// endpoint, its normalized parameters, and the corpus fingerprint the
// answer was computed against. Same question + same corpus content =
// same key, on every pdbd instance that ever loads this corpus.
func cacheKey(endpoint string, params []string, fingerprint string) string {
	parts := append([]string{"pdbd-response v1", endpoint}, params...)
	return durable.KeyOf(append(parts, fingerprint)...)
}

// cache is the two-tier result cache: a sharded in-memory LRU in
// front of an optional content-addressed disk tier (a durable journal,
// the same machinery merge checkpoints use). Disk hits are promoted
// into memory; memory evictions simply fall back to disk. A
// singleflight group coalesces concurrent misses for the same key so
// a thundering herd computes each answer once.
type cache struct {
	mem     *memCache
	disk    *durable.Journal // nil = memory-only
	metrics *obs.Metrics
	group   singleflight
}

func newCache(memEntries int, disk *durable.Journal, m *obs.Metrics) *cache {
	return &cache{mem: newMemCache(memEntries), disk: disk, metrics: m}
}

// get probes memory then disk. The tier string reports where the hit
// came from ("mem" or "disk") for the X-Pdbd-Cache header.
func (c *cache) get(key string) (*entry, string, bool) {
	if e, ok := c.mem.get(key); ok {
		c.metrics.Counter("cache.mem.hits").Add(1)
		return e, "mem", true
	}
	c.metrics.Counter("cache.mem.misses").Add(1)
	if c.disk == nil {
		return nil, "", false
	}
	payload, ok, invalid := c.disk.Load(key)
	if invalid {
		c.metrics.Counter("cache.disk.invalid").Add(1)
		_ = c.disk.Remove(key)
	}
	if ok {
		var e entry
		if err := json.Unmarshal(payload, &e); err == nil && e.SchemaVersion == schema.Version {
			c.metrics.Counter("cache.disk.hits").Add(1)
			c.mem.put(key, &e)
			return &e, "disk", true
		}
		// Decodable by the journal but not by us: a foreign or
		// stale-schema entry. Drop it.
		c.metrics.Counter("cache.disk.invalid").Add(1)
		_ = c.disk.Remove(key)
	}
	c.metrics.Counter("cache.disk.misses").Add(1)
	return nil, "", false
}

// put stores an entry in both tiers. Disk write failures are counted,
// not fatal — the memory tier still serves the entry.
func (c *cache) put(key string, e *entry) {
	c.mem.put(key, e)
	if c.disk == nil {
		return
	}
	payload, err := json.Marshal(e)
	if err == nil {
		err = c.disk.Store(key, payload)
	}
	if err != nil {
		c.metrics.Counter("cache.disk.errors").Add(1)
	}
}

// do answers one request through the cache: hit either tier, or
// coalesce onto (or become) the leader computing the answer. Waiters
// whose leader was canceled retry as leader candidates — a client
// hanging up must not fail the requests riding behind it.
func (c *cache) do(ctx context.Context, key string, compute func() (*entry, error)) (*entry, string, error) {
	for {
		if e, tier, ok := c.get(key); ok {
			return e, tier, nil
		}
		e, err, coalesced := c.group.do(ctx, key, func() (*entry, error) {
			e, err := compute()
			if err != nil {
				return nil, err
			}
			c.put(key, e)
			return e, nil
		})
		if coalesced {
			c.metrics.Counter("cache.coalesced").Add(1)
		}
		var gone *leaderGoneError
		if errors.As(err, &gone) && ctx.Err() == nil {
			continue
		}
		tier := ""
		if coalesced && err == nil {
			tier = "coalesced"
		}
		return e, tier, err
	}
}

// invalidate rewires the cache across a corpus reload. Entries keyed
// to the old fingerprint are either dropped — global entries, and
// entries whose recorded node keys intersect the drop set (the
// affected closure of the changed units on both the old and the new
// graph) — or carried: re-keyed to the new fingerprint so the answers
// they hold, provably untouched by the change, keep serving warm.
func (c *cache) invalidate(oldFP, newFP string, drop map[string]bool) (carried, dropped int) {
	rekey := func(key string, e *entry) {
		doomed := e.Global
		for _, k := range e.NodeKeys {
			doomed = doomed || drop[k]
		}
		if doomed {
			dropped++
			return
		}
		carried++
		c.put(cacheKey(e.Endpoint, e.Params, newFP), e)
	}
	for key, e := range c.mem.snapshot() {
		c.mem.remove(key)
		if c.disk != nil {
			// The disk copy under the old key is superseded either way:
			// dropped entries must not linger, carried ones are re-stored
			// under the new key by rekey's put.
			_ = c.disk.Remove(key)
		}
		rekey(key, e)
	}
	if c.disk != nil {
		keys, err := c.disk.Keys()
		if err != nil {
			c.metrics.Counter("cache.disk.errors").Add(1)
			keys = nil
		}
		for _, key := range keys {
			payload, ok, invalid := c.disk.Load(key)
			if invalid {
				c.metrics.Counter("cache.disk.invalid").Add(1)
			}
			if !ok {
				_ = c.disk.Remove(key)
				continue
			}
			var e entry
			if err := json.Unmarshal(payload, &e); err != nil || e.SchemaVersion != schema.Version {
				c.metrics.Counter("cache.disk.invalid").Add(1)
				_ = c.disk.Remove(key)
				continue
			}
			if nk := cacheKey(e.Endpoint, e.Params, newFP); nk == key {
				// Already keyed to the new fingerprint (written by the
				// memory pass above, or a shared-disk peer).
				continue
			}
			_ = c.disk.Remove(key)
			rekey(key, &e)
		}
	}
	c.metrics.Counter("cache.carried").Add(int64(carried))
	c.metrics.Counter("cache.dropped").Add(int64(dropped))
	return carried, dropped
}
