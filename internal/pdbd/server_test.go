package pdbd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/obs"
	"pdt/internal/pdb"
	"pdt/internal/schema"
)

// testRaw builds a corpus with two disconnected clusters, so a change
// in one provably cannot affect answers about the other:
//
//	cluster 1: main.cc -> a.h,  routine main (main.cc) calls helper (a.h)
//	cluster 2: lib2.cc -> c.h,  routine work (lib2.cc)
//
// With extra=true, cluster 2 gains a routine in c.h — the "changed
// corpus" second version.
func testRaw(extra bool) *pdb.PDB {
	fref := func(n int) pdb.Ref { return pdb.Ref{Prefix: "so", ID: n} }
	loc := func(file, line int) pdb.Loc { return pdb.Loc{File: fref(file), Line: line, Col: 1} }
	raw := &pdb.PDB{
		Files: []*pdb.SourceFile{
			{ID: 1, Name: "main.cc", Includes: []pdb.Ref{fref(2)}},
			{ID: 2, Name: "a.h"},
			{ID: 10, Name: "lib2.cc", Includes: []pdb.Ref{fref(11)}},
			{ID: 11, Name: "c.h"},
		},
		Routines: []*pdb.Routine{
			{ID: 30, Name: "main", Loc: loc(1, 10),
				Pos:   pdb.Pos{BodyBegin: loc(1, 10), BodyEnd: loc(1, 12)},
				Calls: []pdb.Call{{Callee: pdb.Ref{Prefix: "ro", ID: 31}, Loc: loc(1, 11)}}},
			{ID: 31, Name: "helper", Loc: loc(2, 10),
				Pos: pdb.Pos{BodyBegin: loc(2, 10), BodyEnd: loc(2, 12)}},
			{ID: 32, Name: "work", Loc: loc(10, 5),
				Pos: pdb.Pos{BodyBegin: loc(10, 5), BodyEnd: loc(10, 7)}},
		},
	}
	if extra {
		raw.Routines = append(raw.Routines, &pdb.Routine{
			ID: 33, Name: "extra", Loc: loc(11, 3),
			Pos: pdb.Pos{BodyBegin: loc(11, 3), BodyEnd: loc(11, 5)},
		})
	}
	return raw
}

func saveRaw(t *testing.T, path string, raw *pdb.PDB) {
	t.Helper()
	if err := ductape.FromRaw(raw).Save(path); err != nil {
		t.Fatal(err)
	}
}

// newTestServer saves the raw database and boots a daemon over it.
func newTestServer(t *testing.T, raw *pdb.PDB, cacheDir string) (*Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.pdb")
	saveRaw(t, path, raw)
	s, err := New(context.Background(), Config{
		Paths:    []string{path},
		CacheDir: cacheDir,
		Metrics:  obs.New("pdbd-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// get fetches a URL and returns status, body, and the cache header.
func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("X-Pdbd-Cache")
}

func TestServerEndpoints(t *testing.T) {
	s, _ := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, url, want string
	}{
		{"healthz", "/v1/healthz", `"status": "ok"`},
		{"lookup", "/v1/lookup?node=file:main.cc", "file:main.cc\n"},
		{"nodes", "/v1/query/nodes", "routine:helper()"},
		{"deps", "/v1/query/deps?node=file:main.cc", "file:a.h"},
		{"rdeps", "/v1/query/rdeps?node=file:a.h", "file:main.cc"},
		{"somepath", "/v1/query/somepath?from=file:main.cc&to=file:a.h", "-include->"},
		{"reaches", "/v1/query/reaches?from=file:main.cc&to=file:a.h", "true\n"},
		{"whatinputs", "/v1/query/whatinputs?file=file:a.h", "file:main.cc"},
		{"affected", "/v1/query/affected?file=file:a.h", "routine:main()"},
		{"deps_json", "/v1/query/deps?node=file:main.cc&format=json", `"schema_version": 1`},
		{"lint", "/v1/lint", "dead-routine"},
		{"lint_json", "/v1/lint?format=json", `"schema_version": 1`},
		{"tree", "/v1/tree", "=== file inclusion tree ==="},
		{"tree_calls", "/v1/tree?calls", "=== static call graph ==="},
		{"html_index", "/v1/html/index.html", "<html>"},
		{"html_default", "/v1/html/", "<html>"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body, _ := get(t, ts.URL+c.url)
			if code != http.StatusOK {
				t.Fatalf("GET %s = %d\n%s", c.url, code, body)
			}
			if !strings.Contains(body, c.want) {
				t.Errorf("GET %s missing %q in:\n%s", c.url, c.want, body)
			}
		})
	}

	// /v1/metrics snapshots the daemon registry, including cache counters.
	code, body, _ := get(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cache.mem.misses") {
		t.Errorf("metrics = %d:\n%s", code, body)
	}

	// Error surface: unknown nodes are 404, malformed requests 400.
	for _, c := range []struct {
		url  string
		code int
	}{
		{"/v1/query/deps?node=file:nope.cc", http.StatusNotFound},
		{"/v1/html/no-such-page.html", http.StatusNotFound},
		{"/v1/query/frobnicate?node=x", http.StatusBadRequest},
		{"/v1/query/deps?node=file:main.cc&depth=zap", http.StatusBadRequest},
		{"/v1/query/somepath?from=file:main.cc", http.StatusBadRequest},
		{"/v1/lint?passes=no-such-pass", http.StatusBadRequest},
		{"/v1/query/deps?node=file:main.cc&format=yaml", http.StatusBadRequest},
	} {
		code, body, _ := get(t, ts.URL+c.url)
		if code != c.code {
			t.Errorf("GET %s = %d, want %d\n%s", c.url, code, c.code, body)
		}
		if code != http.StatusOK && !strings.Contains(body, `"schema_version"`) {
			t.Errorf("GET %s error body not versioned:\n%s", c.url, body)
		}
	}
}

func TestServerCacheTiers(t *testing.T) {
	cacheDir := t.TempDir()
	s, path := newTestServer(t, testRaw(false), cacheDir)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/query/deps?node=file:main.cc"
	_, cold, tier := get(t, url)
	if tier != "miss" {
		t.Errorf("first request tier = %q, want miss", tier)
	}
	_, warm, tier := get(t, url)
	if tier != "mem" {
		t.Errorf("second request tier = %q, want mem", tier)
	}
	if cold != warm {
		t.Error("cached response differs from computed response")
	}

	// A fresh daemon over the same cache directory (a restart) serves
	// the same answer from the disk tier without recomputing.
	s2, err := New(context.Background(), Config{
		Paths:    []string{path},
		CacheDir: cacheDir,
		Metrics:  obs.New("pdbd-test-2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, disk, tier := get(t, ts2.URL+"/v1/query/deps?node=file:main.cc")
	if tier != "disk" {
		t.Errorf("restarted daemon tier = %q, want disk", tier)
	}
	if disk != cold {
		t.Error("disk-tier response differs from original")
	}
}

func TestServerReloadInvalidation(t *testing.T) {
	s, path := newTestServer(t, testRaw(false), t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the cache: one entry per cluster (exact-form specs, so the
	// entries are per-node, not global), plus a global lint entry.
	urlStable := ts.URL + "/v1/query/deps?node=file:main.cc"
	urlChanged := ts.URL + "/v1/query/affected?file=file:c.h"
	get(t, urlStable)
	get(t, urlChanged)
	get(t, ts.URL+"/v1/lint")
	_, before, _ := get(t, urlChanged)

	// Change cluster 2 only (a new routine in c.h) and reload.
	saveRaw(t, path, testRaw(true))
	resp, err := http.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum ReloadSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.SchemaVersion != schema.Version || sum.Unchanged {
		t.Fatalf("reload summary = %+v", sum)
	}
	if len(sum.ChangedUnits) != 1 || sum.ChangedUnits[0] != "c.h" {
		t.Errorf("changed units = %v, want [c.h]", sum.ChangedUnits)
	}
	// The cluster-1 entry is provably untouched and carried; the
	// cluster-2 entry and the global lint entry are dropped.
	if sum.CacheCarried < 1 || sum.CacheDropped < 2 {
		t.Errorf("cache carried %d dropped %d, want >=1 carried and >=2 dropped",
			sum.CacheCarried, sum.CacheDropped)
	}

	// Carried: still a cache hit under the new fingerprint.
	if _, _, tier := get(t, urlStable); tier != "mem" {
		t.Errorf("untouched entry tier after reload = %q, want mem", tier)
	}
	// Dropped: recomputed, and the new answer reflects the change.
	code, after, tier := get(t, urlChanged)
	if code != http.StatusOK || tier != "miss" {
		t.Errorf("changed entry after reload = (%d, %q), want recompute", code, tier)
	}
	if after == before {
		t.Error("affected set did not change after the corpus changed")
	}
	if !strings.Contains(after, "routine:extra()") {
		t.Errorf("new affected set missing the added routine:\n%s", after)
	}

	// Reloading identical content is a no-op.
	resp, err = http.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sum.Unchanged {
		t.Errorf("identical reload not reported unchanged: %+v", sum)
	}
}

// TestServerConcurrentReload hammers mixed endpoints while the corpus
// flips between two versions under POST /v1/reload. Every response
// must be internally consistent: the body must match the corpus
// version named by its X-Pdbd-Fingerprint header — old or new, never
// a mix. Run under -race this also exercises the swap and cache paths
// for data races.
func TestServerConcurrentReload(t *testing.T) {
	s, path := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Learn the two (fingerprint -> expected body) pairs up front.
	expect := map[string]map[string]string{} // fingerprint -> url -> body
	urls := []string{
		"/v1/query/affected?file=file:c.h",
		"/v1/query/deps?node=file:lib2.cc",
		"/v1/lookup?node=routine:extra()&node=routine:work()",
	}
	learn := func() string {
		fp := s.Fingerprint()
		bodies := map[string]string{}
		for _, u := range urls {
			_, body, _ := get(t, ts.URL+u)
			bodies[u] = body
		}
		expect[fp] = bodies
		return fp
	}
	fp1 := learn()
	saveRaw(t, path, testRaw(true))
	if _, err := s.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	fp2 := learn()
	if fp1 == fp2 {
		t.Fatal("the two corpus versions fingerprint identically")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(i+n)%len(urls)]
				resp, err := client.Get(ts.URL + u)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				fp := resp.Header.Get("X-Pdbd-Fingerprint")
				want, ok := expect[fp][u]
				if !ok {
					t.Errorf("response under unknown fingerprint %q", fp)
					return
				}
				if string(body) != want {
					t.Errorf("GET %s under %.12s: body does not match that corpus version\n got: %s\nwant: %s",
						u, fp, body, want)
					return
				}
			}
		}(i)
	}

	for round := 0; round < 6; round++ {
		saveRaw(t, path, testRaw(round%2 == 0))
		if _, err := s.Reload(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestServerLookupWithNonExactSpecIsGlobal(t *testing.T) {
	// A bare-name lookup can start matching new nodes after a reload,
	// so its cache entry must be global: dropped on ANY change, even
	// one in the "other" cluster.
	s, path := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/lookup?node=helper()"
	get(t, url)
	saveRaw(t, path, testRaw(true))
	sum, err := s.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.CacheDropped == 0 {
		t.Fatalf("bare-name lookup entry survived a reload: %+v", sum)
	}
	if _, _, tier := get(t, url); tier != "miss" {
		t.Errorf("bare-name lookup tier after reload = %q, want miss", tier)
	}
}

func TestServerLintIncrementalFindings(t *testing.T) {
	// With a cache dir, /v1/lint runs through the incremental driver:
	// the first run populates the findings journal, and after a reload
	// (which drops the global response entry) the re-run splices from
	// it. The response bytes never change.
	m := obs.New("pdbd-lint")
	path := filepath.Join(t.TempDir(), "corpus.pdb")
	saveRaw(t, path, testRaw(false))
	s, err := New(context.Background(), Config{
		Paths:    []string{path},
		CacheDir: t.TempDir(),
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first, _ := get(t, ts.URL+"/v1/lint")
	snap := m.Snapshot()
	if snap.Counters["findings.stored"] == 0 {
		t.Error("first lint run stored no findings in the journal")
	}
	// Same corpus, cache hit: no second run at all.
	_, second, tier := get(t, ts.URL+"/v1/lint")
	if tier != "mem" || second != first {
		t.Errorf("second lint = (%q, equal=%v), want warm identical", tier, second == first)
	}
	fmt.Fprintf(io.Discard, "%s", first)
}

// TestServerReadiness drives the deferred-start lifecycle: a daemon
// whose corpus hasn't loaded yet must stay alive on /v1/livez, answer
// 503 "loading" on /v1/healthz and on every corpus-backed endpoint,
// then flip to 200 "ok" the moment LoadCorpus completes.
func TestServerReadiness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.pdb")
	saveRaw(t, path, testRaw(false))
	s, err := NewDeferred(Config{Paths: []string{path}, Metrics: obs.New("pdbd-test")})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness is green before the corpus exists.
	code, body, _ := get(t, ts.URL+"/v1/livez")
	if code != http.StatusOK || !strings.Contains(body, `"alive"`) {
		t.Errorf("livez while loading = %d:\n%s", code, body)
	}

	// Readiness is not: 503 with a versioned JSON envelope.
	code, body, _ = get(t, ts.URL+"/v1/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while loading = %d, want 503\n%s", code, body)
	}
	if !strings.Contains(body, `"status": "loading"`) || !strings.Contains(body, `"schema_version"`) {
		t.Errorf("healthz loading body:\n%s", body)
	}

	// Corpus-backed endpoints degrade to 503, never crash.
	for _, url := range []string{
		"/v1/lookup?node=file:main.cc",
		"/v1/query/deps?node=file:main.cc",
		"/v1/lint",
		"/v1/tree",
		"/v1/html/index.html",
	} {
		code, body, _ := get(t, ts.URL+url)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s while loading = %d, want 503\n%s", url, code, body)
		}
		if !strings.Contains(body, `"schema_version"`) {
			t.Errorf("GET %s 503 body not versioned:\n%s", url, body)
		}
	}

	// A reload before the initial load is a client error, not a panic.
	resp, err := http.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reload while loading = %d, want 400", resp.StatusCode)
	}

	if err := s.LoadCorpus(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, body, _ = get(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz after load = %d:\n%s", code, body)
	}
	if !strings.Contains(body, s.Fingerprint()) {
		t.Errorf("healthz missing fingerprint %q:\n%s", s.Fingerprint(), body)
	}
	code, body, _ = get(t, ts.URL+"/v1/query/deps?node=file:main.cc")
	if code != http.StatusOK || !strings.Contains(body, "file:a.h") {
		t.Errorf("query after load = %d:\n%s", code, body)
	}
}

// TestServerHealthzDuringReload pins the readiness dip while a reload
// rebuild is in flight: healthz answers 503 "reloading" (still carrying
// the serving fingerprint), data endpoints keep answering 200 from the
// old snapshot, and readiness returns once the swap lands.
func TestServerHealthzDuringReload(t *testing.T) {
	s, _ := newTestServer(t, testRaw(false), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.reloading.Store(true)
	code, body, _ := get(t, ts.URL+"/v1/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "reloading"`) {
		t.Errorf("healthz during reload = %d:\n%s", code, body)
	}
	if !strings.Contains(body, s.Fingerprint()) {
		t.Errorf("reloading healthz should carry the serving fingerprint:\n%s", body)
	}
	// Old snapshot keeps serving while not "ready".
	code, body, _ = get(t, ts.URL+"/v1/query/deps?node=file:main.cc")
	if code != http.StatusOK || !strings.Contains(body, "file:a.h") {
		t.Errorf("query during reload = %d:\n%s", code, body)
	}
	s.reloading.Store(false)

	// A real reload restores readiness on completion.
	if _, err := s.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body, _ = get(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz after reload = %d:\n%s", code, body)
	}
}
