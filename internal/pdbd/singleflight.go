package pdbd

import (
	"context"
	"errors"
	"sync"
)

// singleflight coalesces concurrent computations of the same key: the
// first request becomes the leader and computes, every concurrent
// duplicate waits for the leader's result instead of recomputing.
//
// The subtlety is cancellation: the leader computes under its own
// request context, so a leader whose client disconnects mid-compute
// fails with context.Canceled — an error that says nothing about the
// waiters' requests. Do reports that case as retryable, and the cache
// loop elects a new leader from the surviving waiters.
type singleflight struct {
	mu sync.Mutex
	m  map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	ent  *entry
	err  error
}

// errLeaderGone is returned to waiters whose leader was canceled; the
// caller retries with itself as a leader candidate.
type leaderGoneError struct{ err error }

func (e *leaderGoneError) Error() string { return "pdbd: coalesced leader failed: " + e.err.Error() }
func (e *leaderGoneError) Unwrap() error { return e.err }

// do runs fn once per key per flight. The bool reports whether this
// caller was a waiter (coalesced onto another's computation). A waiter
// whose own ctx expires returns ctx.Err() immediately; a waiter whose
// leader failed with the *leader's* cancellation gets leaderGoneError
// so the caller can retry.
func (g *singleflight) do(ctx context.Context, key string, fn func() (*entry, error)) (*entry, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*sfCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
		if c.err != nil && ctx.Err() == nil {
			// The flight failed but this waiter is still live: if the
			// failure was the leader's own cancellation it says nothing
			// about this request — report it retryable.
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				return nil, &leaderGoneError{c.err}, true
			}
		}
		return c.ent, c.err, true
	}
	c := &sfCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.ent, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.ent, c.err, false
}
