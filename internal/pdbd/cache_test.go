package pdbd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/schema"
)

func testEntry(endpoint string, params []string, body string) *entry {
	return &entry{
		SchemaVersion: schema.Version,
		Endpoint:      endpoint,
		Params:        params,
		ContentType:   "text/plain; charset=utf-8",
		Body:          []byte(body),
	}
}

func TestMemCacheLRU(t *testing.T) {
	c := newMemCache(memShards) // one entry per shard
	// Two keys in the same shard: the second insert evicts the first.
	a, b := "aa-same-shard-1", "aa-same-shard-2"
	if c.shard(a) != c.shard(b) {
		t.Fatalf("test keys landed in different shards")
	}
	c.put(a, testEntry("q", nil, "A"))
	c.put(b, testEntry("q", nil, "B"))
	if _, ok := c.get(a); ok {
		t.Error("oldest entry survived past shard capacity")
	}
	if e, ok := c.get(b); !ok || string(e.Body) != "B" {
		t.Errorf("newest entry missing after eviction (ok=%v)", ok)
	}
	// Recency: touch b, insert a third key, b must survive.
	c.put(a, testEntry("q", nil, "A"))
	c.get(a)
	c.put(b, testEntry("q", nil, "B2"))
	if _, ok := c.get(b); !ok {
		t.Error("most recent insert evicted")
	}
}

func TestCacheTwoTierPromotion(t *testing.T) {
	dir := t.TempDir()
	j, err := durable.OpenJournal(durable.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New("test")
	c1 := newCache(64, j, m)
	key := cacheKey("query", []string{"cmd=nodes"}, "fp1")
	c1.put(key, testEntry("query", []string{"cmd=nodes"}, "hello"))

	// A second cache over the same directory (a daemon restart) has a
	// cold memory tier but hits disk — and promotes the entry into
	// memory so the next probe is a memory hit.
	j2, err := durable.OpenJournal(durable.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := obs.New("test2")
	c2 := newCache(64, j2, m2)
	e, tier, ok := c2.get(key)
	if !ok || tier != "disk" || string(e.Body) != "hello" {
		t.Fatalf("get after restart = (%v, %q, %v), want disk hit", e, tier, ok)
	}
	if _, tier, ok = c2.get(key); !ok || tier != "mem" {
		t.Fatalf("second get tier = %q, want mem (promoted)", tier)
	}
	snap := m2.Snapshot()
	if snap.Counters["cache.disk.hits"] != 1 || snap.Counters["cache.mem.hits"] != 1 {
		t.Errorf("counters = %v, want one disk hit and one mem hit", snap.Counters)
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	m := obs.New("test")
	c := newCache(64, nil, m)
	key := cacheKey("query", []string{"cmd=deps"}, "fp1")

	const clients = 8
	gate := make(chan struct{})
	var computes atomic.Int64
	var started sync.WaitGroup
	var done sync.WaitGroup
	started.Add(clients)
	done.Add(clients)
	errs := make([]error, clients)
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer done.Done()
			started.Done()
			e, _, err := c.do(context.Background(), key, func() (*entry, error) {
				computes.Add(1)
				<-gate
				return testEntry("query", nil, "answer"), nil
			})
			errs[i] = err
			if e != nil {
				bodies[i] = string(e.Body)
			}
		}(i)
	}
	started.Wait()
	// Everyone is either the leader (blocked on the gate) or a waiter
	// riding the leader's flight; no result exists yet.
	close(gate)
	done.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil || bodies[i] != "answer" {
			t.Errorf("client %d: err=%v body=%q", i, errs[i], bodies[i])
		}
	}
	snap := m.Snapshot()
	if snap.Counters["cache.coalesced"] == 0 {
		t.Error("no requests were coalesced")
	}
}

// TestCacheLeaderCancelRetry pins the cancellation contract: a leader
// whose own client hangs up must not fail the waiters coalesced behind
// it — a surviving waiter retries and becomes the new leader.
func TestCacheLeaderCancelRetry(t *testing.T) {
	m := obs.New("test")
	c := newCache(64, nil, m)
	key := cacheKey("query", []string{"cmd=deps"}, "fp1")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inCompute := make(chan struct{})
	var computes atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.do(leaderCtx, key, func() (*entry, error) {
			if computes.Add(1) == 1 {
				close(inCompute)
				<-leaderCtx.Done()
				return nil, leaderCtx.Err()
			}
			return testEntry("query", nil, "answer"), nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()

	<-inCompute
	waiterDone := make(chan error, 1)
	var waiterBody atomic.Value
	go func() {
		e, _, err := c.do(context.Background(), key, func() (*entry, error) {
			if computes.Add(1) == 1 {
				t.Error("waiter became first leader")
			}
			return testEntry("query", nil, "answer"), nil
		})
		if e != nil {
			waiterBody.Store(string(e.Body))
		}
		waiterDone <- err
	}()

	// Give the waiter a moment to coalesce, then kill the leader.
	// (If the waiter instead arrives after the flight died, it simply
	// becomes a leader itself — the assertion below holds either way.)
	cancelLeader()
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want success after retry", err)
	}
	if got, _ := waiterBody.Load().(string); got != "answer" {
		t.Errorf("waiter body = %q, want %q", got, "answer")
	}
	wg.Wait()
}

func TestCacheInvalidate(t *testing.T) {
	dir := t.TempDir()
	j, err := durable.OpenJournal(durable.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New("test")
	c := newCache(64, j, m)

	oldFP, newFP := "fp-old", "fp-new"
	mk := func(endpoint string, params []string, keys []string, global bool, body string) string {
		e := testEntry(endpoint, params, body)
		e.NodeKeys = keys
		e.Global = global
		k := cacheKey(endpoint, params, oldFP)
		c.put(k, e)
		return k
	}
	kGlobal := mk("lint", []string{"format=text"}, nil, true, "lint-report")
	kHit := mk("query", []string{"cmd=deps", "file:changed.cc"}, []string{"file:changed.cc"}, false, "deps-changed")
	kMiss := mk("query", []string{"cmd=deps", "file:stable.cc"}, []string{"file:stable.cc"}, false, "deps-stable")

	carried, dropped := c.invalidate(oldFP, newFP, map[string]bool{"file:changed.cc": true})
	if carried != 1 || dropped != 2 {
		t.Errorf("invalidate = (carried %d, dropped %d), want (1, 2)", carried, dropped)
	}
	for _, k := range []string{kGlobal, kHit, kMiss} {
		if _, _, ok := c.get(k); ok {
			t.Errorf("old-fingerprint key still serves after invalidate")
		}
	}
	// The untouched entry was re-keyed to the new fingerprint — in
	// memory and on disk.
	nk := cacheKey("query", []string{"cmd=deps", "file:stable.cc"}, newFP)
	if e, tier, ok := c.get(nk); !ok || string(e.Body) != "deps-stable" || tier != "mem" {
		t.Fatalf("carried entry = (%v, %q, %v), want mem hit", e, tier, ok)
	}
	keys, err := j.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != nk {
		t.Errorf("disk keys after invalidate = %v, want exactly [%s]", keys, nk)
	}
}

func TestCacheKeyFraming(t *testing.T) {
	// The key must separate endpoint, params, and fingerprint: moving a
	// byte between parts must change the key.
	a := cacheKey("query", []string{"ab"}, "fp")
	b := cacheKey("query", []string{"a", "b"}, "fp")
	d := cacheKey("querya", []string{"b"}, "fp")
	if a == b || a == d || b == d {
		t.Errorf("cache keys collide across part boundaries: %s %s %s", a, b, d)
	}
	if cacheKey("q", nil, "fp1") == cacheKey("q", nil, "fp2") {
		t.Error("fingerprint does not affect the key")
	}
}

func TestCacheDiskDisabled(t *testing.T) {
	m := obs.New("test")
	c := newCache(4, nil, m)
	key := cacheKey("q", nil, "fp")
	if _, _, ok := c.get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(key, testEntry("q", nil, "x"))
	if e, tier, ok := c.get(key); !ok || tier != "mem" || string(e.Body) != "x" {
		t.Fatalf("get = (%v, %q, %v)", e, tier, ok)
	}
}

func TestCacheDoComputesOnceThenHits(t *testing.T) {
	m := obs.New("test")
	c := newCache(64, nil, m)
	key := cacheKey("q", nil, "fp")
	n := 0
	for i := 0; i < 3; i++ {
		e, tier, err := c.do(context.Background(), key, func() (*entry, error) {
			n++
			return testEntry("q", nil, fmt.Sprintf("v%d", n)), nil
		})
		if err != nil || string(e.Body) != "v1" {
			t.Fatalf("do #%d = (%s, %v)", i, e.Body, err)
		}
		if i == 0 && tier != "miss" && tier != "" {
			t.Errorf("first do tier = %q, want miss", tier)
		}
		if i > 0 && tier != "mem" {
			t.Errorf("do #%d tier = %q, want mem", i, tier)
		}
	}
	if n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}
