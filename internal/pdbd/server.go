// Package pdbd is the resident PDB service: it loads (and, for many
// inputs, merges) a program-database corpus once, keeps it hot, and
// answers the same questions the command-line tools answer — graph
// queries, lint findings, hierarchy trees, HTML documentation pages —
// over versioned HTTP/JSON endpoints for many concurrent clients.
//
// The daemon is a thin shell over internal/corpus, exactly like the
// CLIs, so an endpoint response body is byte-identical to the
// corresponding command-line invocation by construction: both sides
// call the same renderers.
//
// Responses flow through a two-tier content-addressed result cache
// (see cache): a sharded in-memory LRU in front of an optional
// on-disk durable journal, with single-flight coalescing of concurrent
// misses. Keys embed the corpus content fingerprint, so a reload
// (SIGHUP or POST /v1/reload) re-fingerprints the corpus, drops only
// the entries the change could affect, and carries the rest forward.
package pdbd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"time"

	"pdt/internal/corpus"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/query"
	"pdt/internal/schema"
	"pdt/internal/taustream"
)

// Config configures one daemon instance. Corpus holds the same
// options the CLI flags set (cliutil.CorpusFlags maps them 1:1), so
// "the daemon opened the corpus the same way" is a config equality.
type Config struct {
	// Paths are the input databases; several are merged as pdbmerge
	// would (reusing Corpus.CheckpointDir journals when set).
	Paths []string
	// Corpus is the shared load configuration.
	Corpus corpus.Options
	// CacheDir enables the disk cache tier: responses are journaled in
	// CacheDir/responses and lint findings in CacheDir/findings. Empty
	// keeps both caches memory-only (and /v1/lint non-incremental).
	CacheDir string
	// MemEntries bounds the in-memory response cache (0 = 4096).
	MemEntries int
	// HTMLSource includes source listings in /v1/html pages, like
	// pdbhtml without -nosrc.
	HTMLSource bool
	// IngestMaxBytes caps one /v1/profile/ingest request body
	// (0 = DefaultIngestMaxBytes). Oversized bodies answer 400.
	IngestMaxBytes int64
	// Metrics receives the daemon's counters and spans; /v1/metrics
	// snapshots it. Nil disables instrumentation.
	Metrics *obs.Metrics
}

// state is the immutable corpus-of-record a request sees: handlers
// load it once and answer entirely from that snapshot, so a reload
// mid-request yields a consistently old or consistently new answer,
// never a mix.
type state struct {
	corpus      *corpus.Corpus
	fingerprint string
}

// Server is the daemon. Create with New, expose with Handler.
type Server struct {
	cfg      Config
	metrics  *obs.Metrics
	cache    *cache
	findings string // lint findings journal dir ("" = none)
	mux      *http.ServeMux

	// profile is the live TAU-stream aggregate. It outlives corpus
	// reloads on purpose: it describes instrumented program runs, not
	// the database, so a reload must not erase it.
	profile     *taustream.Aggregator
	ingestMax   int64
	profileJSON liveMemo
	profileHTML liveMemo

	st        atomic.Pointer[state] // nil until LoadCorpus completes
	reloading atomic.Bool           // true while a reload rebuild is in flight
	reloadMu  sync.Mutex            // serializes Reload; never blocks requests
}

// New opens the corpus and builds the daemon around it.
func New(ctx context.Context, cfg Config) (*Server, error) {
	s, err := NewDeferred(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.LoadCorpus(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// NewDeferred builds the daemon — handler, caches, profile aggregator —
// WITHOUT opening the corpus, so the listener can come up and answer
// health probes immediately. Until LoadCorpus completes, /v1/healthz
// reports 503 "loading" (liveness stays green on /v1/livez) and every
// corpus-backed endpoint answers 503 instead of blocking.
func NewDeferred(cfg Config) (*Server, error) {
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("pdbd: no corpus paths configured")
	}
	if cfg.MemEntries <= 0 {
		cfg.MemEntries = 4096
	}
	if cfg.Corpus.Metrics == nil {
		// Corpus-side spans and counters (loads, graph builds, lint
		// reuse) land in the daemon's registry unless routed elsewhere.
		cfg.Corpus.Metrics = cfg.Metrics
	}
	s := &Server{cfg: cfg, metrics: cfg.Metrics}
	s.profile = taustream.NewAggregator(cfg.Metrics)
	s.ingestMax = cfg.IngestMaxBytes
	if s.ingestMax <= 0 {
		s.ingestMax = DefaultIngestMaxBytes
	}

	var disk *durable.Journal
	if cfg.CacheDir != "" {
		var err error
		disk, err = durable.OpenJournal(durable.OS, filepath.Join(cfg.CacheDir, "responses"))
		if err != nil {
			return nil, err
		}
		s.findings = filepath.Join(cfg.CacheDir, "findings")
	}
	s.cache = newCache(cfg.MemEntries, disk, s.metrics)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/livez", s.handleLivez)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("GET /v1/query/{cmd}", s.handleQuery)
	s.mux.HandleFunc("GET /v1/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/tree", s.handleTree)
	s.mux.HandleFunc("GET /v1/html/{page...}", s.handleHTML)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/profile/ingest", s.handleProfileIngest)
	s.mux.HandleFunc("GET /v1/profile", s.handleProfile)
	s.mux.HandleFunc("GET /v1/profile/html", s.handleProfileHTML)
	return s, nil
}

// LoadCorpus performs the deferred initial corpus open and flips the
// daemon ready. Safe to call once after NewDeferred (New calls it for
// you).
func (s *Server) LoadCorpus(ctx context.Context) error {
	c, err := corpus.Open(ctx, s.cfg.Paths, s.cfg.Corpus)
	if err != nil {
		return err
	}
	s.st.Store(&state{corpus: c, fingerprint: c.Fingerprint()})
	return nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Timeout discipline for the public listener. A daemon "for millions
// of users" must bound what one slow client can hold: without a read
// timeout, a client that dribbles header bytes (slowloris) pins a
// connection — and its goroutine — forever.
const (
	// ReadHeaderTimeout bounds the wait for a request line + headers.
	ReadHeaderTimeout = 10 * time.Second
	// ReadTimeout bounds reading one full request, body included; at
	// the ingest body cap this still allows a sub-3KB/s uploader.
	ReadTimeout = 60 * time.Second
	// WriteTimeout bounds writing one response.
	WriteTimeout = 60 * time.Second
	// IdleTimeout reaps keep-alive connections parked between
	// requests.
	IdleTimeout = 120 * time.Second
)

// HTTPServer wraps the daemon handler in an http.Server carrying the
// timeout discipline above; cmd/pdbd serves through it, and tests
// assert the configuration so the unbounded-server regression cannot
// return.
func (s *Server) HTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Profile returns the live TAU-stream aggregate (for tests and
// embedders).
func (s *Server) Profile() *taustream.Aggregator { return s.profile }

// Fingerprint returns the current corpus content fingerprint ("" until
// LoadCorpus completes).
func (s *Server) Fingerprint() string {
	if st := s.st.Load(); st != nil {
		return st.fingerprint
	}
	return ""
}

// Corpus returns the current corpus snapshot (nil until LoadCorpus
// completes).
func (s *Server) Corpus() *corpus.Corpus {
	if st := s.st.Load(); st != nil {
		return st.corpus
	}
	return nil
}

// --- request plumbing -------------------------------------------------------

// errorBody is the JSON error envelope every non-200 response carries.
type errorBody struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}

// fail maps a computation error onto the HTTP surface: corpus
// classification errors become 400/404, cancellations mean the client
// is gone (nothing useful to write), everything else is a 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.metrics.Counter("http.canceled").Add(1)
		return
	}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, corpus.ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, corpus.ErrNotFound):
		code = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorBody{SchemaVersion: schema.Version, Error: err.Error()})
}

// formatParam validates ?format= (text or json; text is the default,
// matching the CLIs).
func formatParam(r *http.Request) (string, error) {
	f := r.URL.Query().Get("format")
	if f == "" {
		f = "text"
	}
	if f != "text" && f != "json" {
		return "", fmt.Errorf("%w: unknown format %q", corpus.ErrBadRequest, f)
	}
	return f, nil
}

// entryMeta classifies a query's invalidation footprint from its
// argument specs. Specs in exact "kind:name" form are recorded as the
// entry's node keys — a reload drops the entry only when one of those
// nodes is in the affected closure of the change. Any looser spec
// (bare names, path bases) can start matching new nodes a change
// introduces, so the entry conservatively becomes global: dropped on
// every content change.
func entryMeta(args []string) (nodeKeys []string, global bool) {
	for _, a := range args {
		if strings.Contains(a, ":") {
			nodeKeys = append(nodeKeys, a)
		} else {
			global = true
		}
	}
	return nodeKeys, global
}

// serveCached answers one cacheable request: probe the two cache
// tiers, coalesce concurrent misses, compute at most once per flight,
// and stamp the cache disposition and corpus fingerprint headers.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, st *state,
	endpoint string, params []string, nodeKeys []string, global bool,
	contentType string, render func() ([]byte, error)) {

	// Stamp the corpus epoch on every response — errors included — so
	// clients can always tell which corpus version answered.
	w.Header().Set("X-Pdbd-Fingerprint", st.fingerprint)

	key := cacheKey(endpoint, params, st.fingerprint)
	e, tier, err := s.cache.do(r.Context(), key, func() (*entry, error) {
		body, err := render()
		if err != nil {
			return nil, err
		}
		return &entry{
			SchemaVersion: schema.Version,
			Endpoint:      endpoint,
			Params:        params,
			NodeKeys:      nodeKeys,
			Global:        global,
			ContentType:   contentType,
			Body:          body,
		}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	if tier == "" {
		tier = "miss"
	}
	w.Header().Set("Content-Type", e.ContentType)
	w.Header().Set("X-Pdbd-Cache", tier)
	_, _ = w.Write(e.Body)
}

func contentTypeFor(format string) string {
	if format == "json" {
		return "application/json"
	}
	return "text/plain; charset=utf-8"
}

// ready returns the current corpus snapshot, or answers 503 with a
// JSON envelope when the initial load hasn't completed yet. Handlers
// that need the corpus go through here so a deferred-start daemon
// degrades to "try again shortly" instead of a nil-pointer crash.
func (s *Server) ready(w http.ResponseWriter) (*state, bool) {
	st := s.st.Load()
	if st == nil {
		s.metrics.Counter("http.not_ready").Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(errorBody{SchemaVersion: schema.Version,
			Error: "corpus is still loading; retry shortly"})
		return nil, false
	}
	return st, true
}

// --- endpoints --------------------------------------------------------------

// healthzBody is the /v1/healthz response. Status is "ok" when the
// daemon is ready to answer corpus queries, "loading" during the
// deferred initial load, "reloading" while a reload rebuild is in
// flight — the latter two with HTTP 503, making the endpoint a
// readiness probe a load balancer can act on directly. Process
// liveness (is the daemon up at all?) is the separate, always-200
// /v1/livez.
type healthzBody struct {
	SchemaVersion int      `json:"schema_version"`
	Status        string   `json:"status"`
	Fingerprint   string   `json:"fingerprint"`
	Paths         []string `json:"paths"`
	CacheEntries  int      `json:"cache_entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		SchemaVersion: schema.Version,
		Status:        "ok",
		Paths:         s.cfg.Paths,
		CacheEntries:  s.cache.mem.len(),
	}
	code := http.StatusOK
	st := s.st.Load()
	switch {
	case st == nil:
		body.Status, code = "loading", http.StatusServiceUnavailable
	case s.reloading.Load():
		// The old corpus still answers queries during a reload, but a
		// balancer asking "should I send NEW traffic here?" gets told to
		// prefer a replica that isn't mid-rebuild.
		body.Status, code = "reloading", http.StatusServiceUnavailable
		body.Fingerprint = st.fingerprint
	default:
		body.Fingerprint = st.fingerprint
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// handleLivez is the liveness probe: 200 whenever the process can
// serve HTTP at all, no matter how far the corpus load has gotten.
// Restart-deciding probes point here; traffic-routing probes point at
// /v1/healthz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = fmt.Fprintf(w, "{\n  \"schema_version\": %d,\n  \"status\": \"alive\"\n}\n", schema.Version)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.metrics.WriteJSON(w); err != nil {
		s.fail(w, err)
	}
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, corpus.CmdLookup, r.URL.Query()["node"])
}

// queryCommands maps the /v1/query/{cmd} path segment onto the corpus
// command set ("rdeps" is the daemon spelling of revdeps; both work).
var queryCommands = map[string]string{
	"nodes":      corpus.CmdNodes,
	"deps":       corpus.CmdDeps,
	"rdeps":      corpus.CmdRevDeps,
	"revdeps":    corpus.CmdRevDeps,
	"somepath":   corpus.CmdSomePath,
	"reaches":    corpus.CmdReaches,
	"whatinputs": corpus.CmdWhatInputs,
	"affected":   corpus.CmdAffected,
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	cmd, ok := queryCommands[r.PathValue("cmd")]
	if !ok {
		s.fail(w, fmt.Errorf("%w: unknown query command %q", corpus.ErrBadRequest, r.PathValue("cmd")))
		return
	}
	q := r.URL.Query()
	var args []string
	switch cmd {
	case corpus.CmdSomePath, corpus.CmdReaches:
		args = []string{q.Get("from"), q.Get("to")}
		if args[0] == "" || args[1] == "" {
			s.fail(w, fmt.Errorf("%w: %s needs from= and to=", corpus.ErrBadRequest, cmd))
			return
		}
	case corpus.CmdWhatInputs, corpus.CmdAffected:
		args = q["file"]
	case corpus.CmdNodes:
	default:
		args = q["node"]
	}
	s.query(w, r, cmd, args)
}

// query is the shared cacheable-query path behind /v1/lookup and
// /v1/query/{cmd}.
func (s *Server) query(w http.ResponseWriter, r *http.Request, cmd string, args []string) {
	format, err := formatParam(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	depth := 0
	if d := r.URL.Query().Get("depth"); d != "" {
		depth, err = strconv.Atoi(d)
		if err != nil {
			s.fail(w, fmt.Errorf("%w: bad depth %q", corpus.ErrBadRequest, d))
			return
		}
	}
	st, ok := s.ready(w)
	if !ok {
		return
	}
	params := append([]string{"format=" + format, "depth=" + strconv.Itoa(depth), "cmd=" + cmd}, args...)
	nodeKeys, global := entryMeta(args)
	if cmd == corpus.CmdNodes {
		global = true
	}
	s.serveCached(w, r, st, "query", params, nodeKeys, global, contentTypeFor(format), func() ([]byte, error) {
		res, err := st.corpus.Query(r.Context(), corpus.QueryRequest{Command: cmd, Args: args, Depth: depth})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.Write(&buf, format); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// csv splits a comma-separated query parameter, dropping empties.
func csv(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	format, err := formatParam(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	q := r.URL.Query()
	passes := csv(q.Get("passes"))
	bloat := 0
	if b := q.Get("template-bloat"); b != "" {
		bloat, err = strconv.Atoi(b)
		if err != nil {
			s.fail(w, fmt.Errorf("%w: bad template-bloat %q", corpus.ErrBadRequest, b))
			return
		}
	}
	// ?changed= routes the (cache-missing) run through the incremental
	// driver for its affected-set accounting; the report bytes are
	// identical either way, so it is deliberately NOT part of the cache
	// key — a warm cache answers regardless of what changed.
	changed := csv(q.Get("changed"))

	st, ok := s.ready(w)
	if !ok {
		return
	}
	params := append([]string{"format=" + format, "template-bloat=" + strconv.Itoa(bloat)}, passes...)
	s.serveCached(w, r, st, "lint", params, nil, true, contentTypeFor(format), func() ([]byte, error) {
		req := corpus.LintRequest{Passes: passes, TemplateBloat: bloat, Changed: changed}
		if s.findings != "" {
			req.FindingsDB = s.findings
		}
		res, err := st.corpus.Lint(r.Context(), req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.Write(&buf, format); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := corpus.TreeRequest{
		Files:   q.Has("files"),
		Classes: q.Has("classes"),
		Calls:   q.Has("calls"),
	}
	st, ok := s.ready(w)
	if !ok {
		return
	}
	params := []string{
		"files=" + strconv.FormatBool(req.Files),
		"classes=" + strconv.FormatBool(req.Classes),
		"calls=" + strconv.FormatBool(req.Calls),
	}
	s.serveCached(w, r, st, "tree", params, nil, true, "text/plain; charset=utf-8", func() ([]byte, error) {
		var buf bytes.Buffer
		if err := st.corpus.WriteTree(&buf, req); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func (s *Server) handleHTML(w http.ResponseWriter, r *http.Request) {
	page := r.PathValue("page")
	if page == "" {
		page = "index.html"
	}
	st, ok := s.ready(w)
	if !ok {
		return
	}
	s.serveCached(w, r, st, "html", []string{"page=" + page, "src=" + strconv.FormatBool(s.cfg.HTMLSource)},
		nil, true, "text/html; charset=utf-8", func() ([]byte, error) {
			return st.corpus.HTMLPage(page, s.cfg.HTMLSource)
		})
}

// --- reload -----------------------------------------------------------------

// ReloadSummary reports what a reload did: the fingerprint epoch
// transition, which units changed, and how the result cache fared —
// how many entries the change invalidated and how many were provably
// untouched and carried over to keep serving warm.
type ReloadSummary struct {
	SchemaVersion  int      `json:"schema_version"`
	OldFingerprint string   `json:"old_fingerprint"`
	Fingerprint    string   `json:"fingerprint"`
	Unchanged      bool     `json:"unchanged"`
	ChangedUnits   []string `json:"changed_units"`
	CacheCarried   int      `json:"cache_carried"`
	CacheDropped   int      `json:"cache_dropped"`
}

// Reload re-opens the corpus from the configured paths, swaps it in
// atomically, and invalidates exactly the cache entries the content
// change could affect: the drop set is the affected closure of the
// changed units on BOTH the old and the new dependency graph (old
// catches severed edges, new catches added ones), plus every global
// entry. Everything else is re-keyed to the new fingerprint.
//
// In-flight requests keep answering from the corpus snapshot they
// loaded; new requests see the new corpus as soon as the swap lands.
func (s *Server) Reload(ctx context.Context) (*ReloadSummary, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	old := s.st.Load()
	if old == nil {
		return nil, fmt.Errorf("reload: %w: initial corpus load has not completed", corpus.ErrBadRequest)
	}

	// While the rebuild runs, /v1/healthz flips to 503 "reloading" so
	// balancers steer new traffic elsewhere; existing requests keep
	// answering from the old snapshot.
	s.reloading.Store(true)
	defer s.reloading.Store(false)

	sp := s.metrics.StartSpan("reload")
	defer sp.End()

	c, err := corpus.Open(ctx, s.cfg.Paths, s.cfg.Corpus)
	if err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}
	sum := &ReloadSummary{
		SchemaVersion:  schema.Version,
		OldFingerprint: old.fingerprint,
		Fingerprint:    c.Fingerprint(),
	}
	if sum.Fingerprint == sum.OldFingerprint {
		// Identical content: keep the old corpus (its lazily built
		// graph and fingerprints stay warm) and touch nothing.
		sum.Unchanged = true
		sum.ChangedUnits = []string{}
		return sum, nil
	}

	changed := c.Fingerprints().ChangedUnits(old.corpus.Fingerprints())
	sum.ChangedUnits = changed
	if sum.ChangedUnits == nil {
		sum.ChangedUnits = []string{}
	}

	drop := make(map[string]bool, len(changed))
	for _, u := range changed {
		drop["file:"+u] = true
	}
	collect := func(g *query.Graph, gerr error) error {
		if gerr != nil {
			return gerr
		}
		for _, n := range g.Affected(changed).Nodes() {
			drop[n.Key()] = true
		}
		return nil
	}
	if err := collect(old.corpus.Graph(ctx)); err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}
	if err := collect(c.Graph(ctx)); err != nil {
		return nil, fmt.Errorf("reload: %w", err)
	}

	sum.CacheCarried, sum.CacheDropped = s.cache.invalidate(old.fingerprint, sum.Fingerprint, drop)
	s.st.Store(&state{corpus: c, fingerprint: sum.Fingerprint})
	s.metrics.Counter("reload.count").Add(1)
	return sum, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Reload(r.Context())
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)
}
