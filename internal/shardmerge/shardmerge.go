// Package shardmerge scales the merge tree past one process: a
// coordinator partitions the merge units into contiguous shards,
// re-execs one worker process per shard (pdbmerge -worker-shard), and
// k-way merges the resulting partial databases — byte-identical to the
// single-process pdbio.Merge over the same inputs, because the merge
// is order-associative and idempotent at every bracketing.
//
// The design is crash-first. Every piece of worker output is already
// safe to lose or duplicate: checkpoints are content-addressed journal
// entries (atomic, self-verifying, shared across all shards), partials
// are durably renamed into place, and completion records carry the
// content hash of the partial they describe. So supervision can be
// simple and brutal — a worker that dies (SIGKILL) or wedges (flock
// held, heartbeat frozen) is killed and its shard handed to a fresh
// peer, which resumes from the dead worker's journal entries rather
// than from zero. Even two live workers racing on one shard converge
// to identical bytes. Repeated failures degrade to the in-process
// merge path, so -shards is never less reliable than the default.
package shardmerge

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// Options configures one coordinated merge.
type Options struct {
	// Shards is the number of partitions (clamped to the unit count).
	Shards int
	// Dir is the coordinator's state directory: shard manifests,
	// partials, leases, results, and the shared checkpoint journal
	// (*.ckpt entries, compatible with pdbmerge -checkpoint-dir).
	Dir string
	// Resume keeps prior shard results and journal entries; without it
	// positional shard state (partials, results) is cleared first.
	// Journal entries are content-addressed and always safe to keep.
	Resume bool

	// Heartbeat is the worker lease refresh interval (default 1s).
	Heartbeat time.Duration
	// StaleAfter is how long a silent worker lives before it is
	// declared wedged, killed, and its shard reassigned (default
	// 4*Heartbeat).
	StaleAfter time.Duration
	// MaxRetries bounds the extra worker attempts per shard before the
	// shard degrades to the in-process merge (default 3).
	MaxRetries int
	// Backoff is the delay before the first reassignment, doubling per
	// retry (default 50ms).
	Backoff time.Duration
	// Procs bounds concurrently supervised worker processes
	// (default = Shards).
	Procs int

	// WorkerArgv is the argv prefix used to exec a worker; the
	// manifest path is appended. Empty runs every shard in-process
	// (still concurrently) — the degraded but dependency-free mode.
	WorkerArgv []string
	// WorkerEnv is appended to every worker's environment.
	WorkerEnv []string
	// WorkerEnvFor, when set, contributes per-attempt environment —
	// the chaos seam faultio.KillSchedule plugs into.
	WorkerEnvFor func(shard, attempt int) []string
	// WorkerStderr receives worker diagnostics (default os.Stderr).
	WorkerStderr io.Writer

	// MergeWorkers is the in-process merge parallelism passed to each
	// worker and to the final k-way merge (pdbio WithWorkers).
	MergeWorkers int
	// Format is the final output encoding (partials are always PDTB).
	Format pdbio.Format

	// Load options, mirroring the corpus flags.
	Strict       bool
	Lenient      bool
	Quarantine   string
	Retries      int
	RetryBackoff time.Duration
	MaxLineBytes int

	// Metrics receives coordinator counters (shard.reassigned,
	// shard.resumed, shard.retries, shard.fallback, shard.completed),
	// per-shard attempt spans, and per-shard busy time. Nil disables.
	Metrics *obs.Metrics
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 4 * o.Heartbeat
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.WorkerStderr == nil {
		o.WorkerStderr = os.Stderr
	}
	return o
}

// Partition splits n units into k contiguous ranges (start inclusive,
// end exclusive) whose sizes differ by at most one. Contiguity is what
// makes the sharded result provably byte-identical: shard i holds
// inputs[start:end] in order, so the final merge over partials is just
// another bracketing of the same in-order sequence.
func Partition(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// MergeToFile merges inputs across o.Shards worker processes and
// durably writes the result to path — the sharded twin of
// pdbio.MergeToFile, byte-identical to it at every shard count and
// kill schedule.
func MergeToFile(ctx context.Context, path string, inputs []string, o Options) error {
	partials, err := runShards(ctx, inputs, o)
	if err != nil {
		return err
	}
	return pdbio.MergeToFile(ctx, path, partials, o.finalOpts()...)
}

// MergeFiles is MergeToFile for stream output (stdout).
func MergeFiles(ctx context.Context, w io.Writer, inputs []string, o Options) error {
	partials, err := runShards(ctx, inputs, o)
	if err != nil {
		return err
	}
	return pdbio.MergeFiles(ctx, w, partials, o.finalOpts()...)
}

// finalOpts configures the coordinator's k-way merge over the partial
// databases. The partials were produced by this package, so the load
// resilience knobs do not apply; encoding and parallelism do.
func (o Options) finalOpts() []pdbio.Option {
	return []pdbio.Option{
		pdbio.WithWorkers(o.MergeWorkers),
		pdbio.WithFormat(o.Format),
		pdbio.WithMetrics(o.Metrics),
	}
}

// coord is one coordinated run.
type coord struct {
	o       Options
	metrics *obs.Metrics
	span    *obs.Span
	pool    *obs.Pool
	sem     chan struct{}
}

// shardFile names one of a shard's positional state files.
func shardFile(dir string, shard int, suffix string) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d%s", shard, suffix))
}

// runShards partitions, supervises, and returns the partial paths in
// shard order.
func runShards(ctx context.Context, inputs []string, o Options) ([]string, error) {
	if len(inputs) == 0 {
		return nil, errors.New("shardmerge: no input files")
	}
	if o.Dir == "" {
		return nil, errors.New("shardmerge: Options.Dir is required")
	}
	o = o.withDefaults()
	k := o.Shards
	if k > len(inputs) {
		// More shards than units would spawn workers with nothing to
		// do; clamp rather than error so -shards 8 on a 3-unit corpus
		// just works.
		k = len(inputs)
	}
	if k < 1 {
		k = 1
	}
	procs := o.Procs
	if procs <= 0 || procs > k {
		procs = k
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardmerge: %w", err)
	}

	// One coordinator per state directory: concurrent coordinators
	// would race on the positional shard files.
	lock, err := durable.AcquireLock(filepath.Join(o.Dir, "coordinator.lock"))
	if err != nil {
		return nil, err
	}
	defer lock.Release()

	if !o.Resume {
		// Positional state (partials, results) from a previous run
		// could satisfy result verification while describing different
		// inputs' shards; clear it. Journal entries are content-
		// addressed and stay — a fresh run simply overwrites by key.
		for _, pat := range []string{"shard-*.pdtb", "shard-*.result.json"} {
			matches, _ := filepath.Glob(filepath.Join(o.Dir, pat))
			for _, mpath := range matches {
				os.Remove(mpath)
			}
		}
	}

	c := &coord{o: o, metrics: o.Metrics, sem: make(chan struct{}, procs)}
	c.span = c.metrics.StartSpan("shardmerge")
	defer c.span.End()
	c.span.AddItems(int64(len(inputs)))
	c.pool = c.metrics.Pool("shards")

	ranges := Partition(len(inputs), k)
	manifests := make([]*Manifest, k)
	partials := make([]string, k)
	for s := 0; s < k; s++ {
		m := &Manifest{
			Shard:        s,
			Inputs:       inputs[ranges[s][0]:ranges[s][1]],
			Partial:      shardFile(o.Dir, s, ".pdtb"),
			Journal:      o.Dir,
			Lease:        shardFile(o.Dir, s, ".lease"),
			Result:       shardFile(o.Dir, s, ".result.json"),
			HeartbeatMS:  int(o.Heartbeat / time.Millisecond),
			Workers:      o.MergeWorkers,
			Strict:       o.Strict,
			Lenient:      o.Lenient,
			Quarantine:   o.Quarantine,
			Retries:      o.Retries,
			BackoffMS:    int(o.RetryBackoff / time.Millisecond),
			MaxLineBytes: o.MaxLineBytes,
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := durable.WriteFile(shardFile(o.Dir, s, ".manifest.json"), data, 0o644); err != nil {
			return nil, err
		}
		manifests[s] = m
		partials[s] = m.Partial
	}

	errs := make([]error, k)
	donech := make(chan int)
	for s := 0; s < k; s++ {
		go func(s int) {
			errs[s] = c.runShard(ctx, manifests[s])
			donech <- s
		}(s)
	}
	for range manifests {
		<-donech
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return partials, nil
}

// runShard drives one shard to a verified partial: bounded worker
// attempts with doubling backoff, then the in-process fallback. Every
// attempt after the first counts as a reassignment — the shard moves
// to a fresh peer process that resumes from whatever the dead one
// journaled.
func (c *coord) runShard(ctx context.Context, m *Manifest) error {
	wrk := c.pool.Worker(m.Shard)
	backoff := c.o.Backoff
	var lastErr error

	// A verified completion record left by a previous run (coordinator
	// resume) settles the shard without spawning anything.
	if res, ok := c.adoptResult(m); ok {
		c.recordResult(res)
		return nil
	}

	attempts := c.o.MaxRetries + 1
	if len(c.o.WorkerArgv) == 0 {
		attempts = 0 // no exec seam: straight to the in-process path
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			c.metrics.Counter("shard.retries").Add(1)
			c.metrics.Counter("shard.reassigned").Add(1)
			fmt.Fprintf(c.o.WorkerStderr, "shardmerge: shard %d attempt %d failed (%v); reassigning after %v\n",
				m.Shard, attempt-1, lastErr, backoff)
			// A dead holder's flock is already gone; this clears the
			// create-exclusive fallback lock on non-flock platforms. A
			// still-live wedged holder reports ErrLocked and the new
			// worker's own lease wait handles it.
			durable.BreakStaleLock(m.Lease, c.o.StaleAfter)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		c.sem <- struct{}{}
		sp := c.span.Start(fmt.Sprintf("shard-%d/attempt-%d", m.Shard, attempt))
		t0 := wrk.Begin()
		res, err := c.superviseAttempt(ctx, m, attempt)
		wrk.End(t0, int64(len(m.Inputs)), 0)
		sp.End()
		<-c.sem
		if err == nil {
			c.recordResult(res)
			return nil
		}
		lastErr = err
	}

	// Exhausted (or no exec seam): the shard degrades to the exact
	// code path a plain pdbmerge would run, resuming from the shared
	// journal so even this reuses whatever any worker completed.
	if err := ctx.Err(); err != nil {
		return err
	}
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	c.metrics.Counter("shard.fallback").Add(1)
	if lastErr != nil {
		fmt.Fprintf(c.o.WorkerStderr, "shardmerge: shard %d exhausted %d attempts (%v); merging in-process\n",
			m.Shard, attempts, lastErr)
	}
	sp := c.span.Start(fmt.Sprintf("shard-%d/fallback", m.Shard))
	defer sp.End()
	t0 := wrk.Begin()
	defer wrk.End(t0, int64(len(m.Inputs)), 0)

	opts := []pdbio.Option{
		pdbio.WithWorkers(c.o.MergeWorkers),
		pdbio.WithCheckpoint(m.Journal, true),
		pdbio.WithFormat(pdbio.FormatBinary),
		pdbio.WithMetrics(c.metrics),
	}
	if c.o.Strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	if c.o.Lenient {
		opts = append(opts, pdbio.WithLenient())
	}
	if c.o.Quarantine != "" {
		opts = append(opts, pdbio.WithQuarantine(c.o.Quarantine))
	}
	if c.o.Retries > 0 {
		opts = append(opts, pdbio.WithRetry(c.o.Retries, c.o.RetryBackoff))
	}
	if c.o.MaxLineBytes > 0 {
		opts = append(opts, pdbio.WithMaxLineBytes(c.o.MaxLineBytes))
	}
	if err := pdbio.MergeToFile(ctx, m.Partial, m.Inputs, opts...); err != nil {
		return fmt.Errorf("shard %d: in-process fallback: %w", m.Shard, err)
	}
	c.metrics.Counter("shard.completed").Add(1)
	return nil
}

// adoptResult loads and verifies the shard's completion record, and
// reclassifies the prior run's work as reused: the shard is settled by
// bytes already on disk, not by anything this coordinator computed.
func (c *coord) adoptResult(m *Manifest) (Result, bool) {
	res, ok := loadResult(m.Result, m.Partial, m.Shard, m.inputsKey())
	if !ok {
		return Result{}, false
	}
	res.Reused, res.Written = res.Written+res.Reused, 0
	return res, true
}

// recordResult folds a verified worker result into the coordinator's
// counters. A result whose merge reused journal entries means the
// shard genuinely resumed a previous holder's work.
func (c *coord) recordResult(res Result) {
	c.metrics.Counter("shard.completed").Add(1)
	c.metrics.Counter("checkpoint.written").Add(res.Written)
	c.metrics.Counter("checkpoint.reused").Add(res.Reused)
	c.metrics.Counter("checkpoint.invalidated").Add(res.Invalidated)
	if res.Reused > 0 {
		c.metrics.Counter("shard.resumed").Add(1)
	}
	if res.Recovered > 0 {
		c.metrics.Counter("shard.recovered").Add(res.Recovered)
	}
}

// superviseAttempt spawns one worker process and watches it die,
// finish, or wedge. The shard's durable Result file — not the exit
// status — is the authoritative completion signal: it is checked on
// every supervision event, so a worker that finished its work and
// then died (SIGKILLed between writing the result and exiting) or
// lingered in process teardown still completes the shard. Liveness is
// the lease heartbeat; before the worker gets that far, the spawn
// time counts as its last sign of life. A worker silent past
// StaleAfter with no result is SIGKILLed — which releases its flock —
// and reported as wedged.
func (c *coord) superviseAttempt(ctx context.Context, m *Manifest, attempt int) (Result, error) {
	argv := append(append([]string{}, c.o.WorkerArgv...), shardFile(c.o.Dir, m.Shard, ".manifest.json"))
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), c.o.WorkerEnv...)
	if c.o.WorkerEnvFor != nil {
		cmd.Env = append(cmd.Env, c.o.WorkerEnvFor(m.Shard, attempt)...)
	}
	cmd.Stderr = c.o.WorkerStderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return Result{}, fmt.Errorf("shard %d: spawn: %w", m.Shard, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	tick := time.NewTicker(c.o.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			res, ok := loadResult(m.Result, m.Partial, m.Shard, m.inputsKey())
			if ok {
				// The work is durably complete and verified; how the
				// process ended no longer matters.
				return res, nil
			}
			if err != nil {
				return Result{}, fmt.Errorf("shard %d: worker died: %w", m.Shard, err)
			}
			return Result{}, fmt.Errorf("shard %d: worker exited clean without a verifiable result", m.Shard)
		case <-tick.C:
			if res, ok := loadResult(m.Result, m.Partial, m.Shard, m.inputsKey()); ok {
				// Done on disk; don't wait out process teardown. After
				// the kill nothing can mutate the shard's state, and
				// any in-flight atomic replace would have carried the
				// same content-addressed bytes anyway.
				cmd.Process.Kill()
				<-done
				return res, nil
			}
			last := start
			if age, ok := durable.HeartbeatAge(m.Lease); ok {
				if t := time.Now().Add(-age); t.After(last) {
					last = t
				}
			}
			if silent := time.Since(last); silent > c.o.StaleAfter {
				cmd.Process.Kill()
				<-done
				return Result{}, fmt.Errorf("shard %d: worker wedged (silent %v > %v); killed", m.Shard, silent.Round(time.Millisecond), c.o.StaleAfter)
			}
		case <-ctx.Done():
			cmd.Process.Kill()
			<-done
			return Result{}, ctx.Err()
		}
	}
}
