//go:build unix

package shardmerge_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"pdt/internal/faultio"
	"pdt/internal/shardmerge"
)

// chaosSeed honors PDT_KILLPOINT_SEED so CI sweeps different kill
// schedules across runs while any failure stays reproducible from the
// logged seed.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("PDT_KILLPOINT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PDT_KILLPOINT_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// saveChaosArtifacts copies the coordinator state directory (journal,
// leases, manifests, results) into PDT_KILLPOINT_ARTIFACTS when a
// chaos iteration fails, so CI uploads what reproduces it.
func saveChaosArtifacts(t *testing.T, dir string) {
	t.Helper()
	root := os.Getenv("PDT_KILLPOINT_ARTIFACTS")
	if root == "" || !t.Failed() {
		return
	}
	dst := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil {
			err = os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644)
		}
		if err != nil {
			t.Logf("artifacts: %v", err)
		}
	}
	t.Logf("chaos artifacts saved to %s", dst)
}

// TestChaosEveryWorkerSIGKILLedOnce is the headline robustness proof:
// every shard's first worker is killed (or wedged, or cut mid-write)
// at a schedule-chosen point, later attempts may be killed again, and
// the final output is still byte-identical to the single-process
// golden, with the reassignments visible in the metrics.
func TestChaosEveryWorkerSIGKILLedOnce(t *testing.T) {
	seed := chaosSeed(t)
	inputs := genCorpus(t, 24)
	want := golden(t, inputs)
	// Pre-result stages only: a worker killed after durably writing its
	// result completes the shard (result adoption), which would make
	// the reassignment count nondeterministic. The result stage gets
	// its own deterministic coverage in TestChaosKillAtEveryStage.
	stages := []string{"start", "lease", "merge"}

	for round := int64(0); round < 3; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d/round=%d", seed, round), func(t *testing.T) {
			sched := faultio.NewKillSchedule(seed+round, stages, 2, 200)
			o := testOptions(t)
			o.Shards = 4
			o.MaxRetries = 4
			o.WorkerEnvFor = func(shard, attempt int) []string {
				if attempt == 0 {
					// Attempt zero always dies: every worker is killed at
					// least once, at a point chosen by the schedule.
					d := sched.Directive(shard, 0)
					if d == "" {
						d = "kill@merge"
					}
					return []string{faultio.ProcKillEnv + "=" + d}
				}
				return sched.Env(shard, attempt)
			}
			defer saveChaosArtifacts(t, o.Dir)

			got := mergedBytes(t, inputs, o)
			if !bytes.Equal(got, want) {
				t.Errorf("chaos output differs from golden (%d vs %d bytes)", len(got), len(want))
			}
			if c := counter(t, o.Metrics, "shard.reassigned"); c < 4 {
				t.Errorf("shard.reassigned = %d, want >= 4 (every shard killed once)", c)
			}
			if c := counter(t, o.Metrics, "shard.completed"); c != 4 {
				t.Errorf("shard.completed = %d, want 4", c)
			}
			t.Logf("reassigned=%d resumed=%d retries=%d fallback=%d",
				counter(t, o.Metrics, "shard.reassigned"),
				counter(t, o.Metrics, "shard.resumed"),
				counter(t, o.Metrics, "shard.retries"),
				counter(t, o.Metrics, "shard.fallback"))
		})
	}
}

// TestChaosKillAtEveryStage sweeps a deterministic kill at each
// supervision window: before the lease, holding the lease, after the
// merge, after the result; a SIGSTOP wedge at two windows; and a
// mid-write cut at several durable-write sites. Each must end golden.
// A worker killed at the result stage dies with its completion record
// already durable, so the supervisor adopts it instead of reassigning
// — every other directive forces a takeover by a fresh worker.
func TestChaosKillAtEveryStage(t *testing.T) {
	inputs := genCorpus(t, 8)
	want := golden(t, inputs)
	directives := []struct {
		env      string
		reassign bool
	}{
		{"kill@start", true}, {"kill@lease", true}, {"kill@merge", true},
		{"kill@result", false},
		{"stop@start", true}, {"stop@merge", true},
		{"site@0", true}, {"site@3", true}, {"site@40", true},
	}
	for _, d := range directives {
		d := d
		t.Run(d.env, func(t *testing.T) {
			t.Parallel()
			o := testOptions(t)
			o.Shards = 2
			o.MaxRetries = 2
			o.WorkerEnvFor = func(shard, attempt int) []string {
				if attempt == 0 {
					return []string{faultio.ProcKillEnv + "=" + d.env}
				}
				return nil
			}
			defer saveChaosArtifacts(t, o.Dir)

			got := mergedBytes(t, inputs, o)
			if !bytes.Equal(got, want) {
				t.Errorf("%s: output differs from golden", d.env)
			}
			reassigned := counter(t, o.Metrics, "shard.reassigned")
			if d.reassign && reassigned < 2 {
				t.Errorf("%s: shard.reassigned = %d, want >= 2", d.env, reassigned)
			}
			if !d.reassign && reassigned != 0 {
				t.Errorf("%s: shard.reassigned = %d, want 0 (result adopted)", d.env, reassigned)
			}
			if c := counter(t, o.Metrics, "shard.completed"); c != 2 {
				t.Errorf("%s: shard.completed = %d, want 2", d.env, c)
			}
		})
	}
}

// TestChaosExhaustionFallsBackInProcess: when every attempt dies, the
// retry budget runs out and the shard merges in-process — the caller
// still gets a nil error and golden bytes.
func TestChaosExhaustionFallsBackInProcess(t *testing.T) {
	inputs := genCorpus(t, 8)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 2
	o.MaxRetries = 1
	o.WorkerEnvFor = func(shard, attempt int) []string {
		return []string{faultio.ProcKillEnv + "=kill@start"} // all attempts die
	}
	defer saveChaosArtifacts(t, o.Dir)

	got := mergedBytes(t, inputs, o)
	if !bytes.Equal(got, want) {
		t.Errorf("exhaustion fallback output differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.fallback"); c != 2 {
		t.Errorf("shard.fallback = %d, want 2", c)
	}
	if c := counter(t, o.Metrics, "shard.reassigned"); c != 2 {
		t.Errorf("shard.reassigned = %d, want 2", c)
	}
}

// TestChaosResumedWorkerReusesJournal: kill every shard's first
// worker after its merge completed (kill@merge — the partial and all
// journal entries are on disk, the result record is not). The second
// attempt must resume from the journal, visible as shard.resumed.
func TestChaosResumedWorkerReusesJournal(t *testing.T) {
	inputs := genCorpus(t, 12)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 2
	o.MaxRetries = 2
	o.WorkerEnvFor = func(shard, attempt int) []string {
		if attempt == 0 {
			return []string{faultio.ProcKillEnv + "=kill@merge"}
		}
		return nil
	}
	defer saveChaosArtifacts(t, o.Dir)

	got := mergedBytes(t, inputs, o)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed output differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.resumed"); c != 2 {
		t.Errorf("shard.resumed = %d, want 2 (every takeover reused the dead worker's journal)", c)
	}
}

// TestChaosCoordinatorKilledAndResumed kills a whole coordinator
// process group (coordinator + live workers) mid-run with SIGKILL,
// then re-runs the same merge with Resume in this process. The rerun
// must produce golden bytes and actually reuse the dead run's work.
func TestChaosCoordinatorKilledAndResumed(t *testing.T) {
	dir := t.TempDir()
	inputs := genCorpus(t, 160)
	want := golden(t, inputs)
	out := filepath.Join(dir, "merged.pdb")
	state := filepath.Join(dir, "state")

	listPath := filepath.Join(dir, "inputs.txt")
	if err := os.WriteFile(listPath, []byte(strings.Join(inputs, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		coordEnv+"=1",
		"PDT_TEST_COORD_DIR="+state,
		"PDT_TEST_COORD_OUT="+out,
		"PDT_TEST_COORD_INPUTS="+listPath,
	)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true} // kill the whole tree at once
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn coordinator: %v", err)
	}
	reaped := false
	defer func() {
		if !reaped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Wait until the run has journaled real work, then SIGKILL the
	// process group — coordinator and workers die together, leaving
	// leases, partial journal state, and possibly torn temp files.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never journaled a checkpoint")
		}
		ckpts, _ := filepath.Glob(filepath.Join(state, "*.ckpt"))
		if len(ckpts) >= 4 {
			break
		}
		if _, err := os.Stat(out); err == nil {
			break // finished before we could kill it; resume still must be golden
		}
		time.Sleep(2 * time.Millisecond)
	}
	syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	cmd.Wait()
	reaped = true

	o := testOptions(t)
	o.Shards = 4
	o.Dir = state
	o.Resume = true
	defer saveChaosArtifacts(t, state)
	if err := shardmerge.MergeToFile(context.Background(), out, inputs, o); err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed coordinator output differs from golden (%d vs %d bytes)", len(got), len(want))
	}
	reused := counter(t, o.Metrics, "checkpoint.reused")
	resumed := counter(t, o.Metrics, "shard.resumed")
	t.Logf("resume reused %d journal entries across %d shards", reused, resumed)
	if reused == 0 {
		t.Errorf("resumed run reused no journal entries despite %s holding checkpoints", state)
	}
}

// TestChaosDuplicateWorkersConverge runs two workers on the SAME
// shard manifest concurrently — the both-alive race the lease
// serializes. Whichever order they run in, the partial and result
// converge to identical verified bytes.
func TestChaosDuplicateWorkersConverge(t *testing.T) {
	inputs := genCorpus(t, 6)
	dir := t.TempDir()
	o := testOptions(t)
	o.Shards = 1
	o.Dir = dir

	// First, a normal run to lay down the manifest (and golden partial).
	out := filepath.Join(t.TempDir(), "merged.pdb")
	if err := shardmerge.MergeToFile(context.Background(), out, inputs, o); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	manifest := filepath.Join(dir, "shard-000.manifest.json")
	partial := filepath.Join(dir, "shard-000.pdtb")
	wantPartial, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}

	// Now race two fresh workers over the same manifest.
	var cmds []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0], manifest)
		cmd.Env = append(os.Environ(), workerEnv+"=1")
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn dup worker: %v", err)
		}
		cmds = append(cmds, cmd)
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("duplicate worker %d failed: %v", i, err)
		}
	}
	gotPartial, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPartial, wantPartial) {
		t.Errorf("racing duplicate workers diverged the partial")
	}
}
