// Benchmark snapshot for the sharded merge scaling curve.
//
// TestBenchSnapshotShardmerge is gated on PDT_BENCH_SNAPSHOT_SHARDMERGE:
// when the variable names an output path, the test generates a
// 10,000-unit corpus, runs the coordinated merge at 1/2/4/8 shards
// (every worker a real re-exec'd process with single-threaded merge,
// so the curve isolates process-level parallelism), and writes the
// wall-clock measurements as JSON. CI runs it on every push and
// uploads the artifact; the committed BENCH_shardmerge.json is the
// documented baseline. The acceptance floor — 4 shards at least 2x
// faster than 1 — is asserted whenever the host has >= 4 CPUs. On
// fewer cores no process count can express the parallelism (the merge
// CPU serializes on the cores, and the journal fsyncs serialize in
// the filesystem journal regardless of shard count), so the run still
// records the full curve plus num_cpu and floor_asserted=false.
package shardmerge_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pdt/internal/obs"
	"pdt/internal/shardmerge"
	"pdt/internal/workload"
)

// 10k units, heavy enough (30 routines each) that per-unit merge and
// checkpoint-serialization CPU — the part extra worker processes
// genuinely parallelize — dominates the fixed per-entry fsync cost.
const (
	benchUnits    = 10000
	benchHeaders  = 5
	benchRoutines = 30
)

func TestBenchSnapshotShardmerge(t *testing.T) {
	out := os.Getenv("PDT_BENCH_SNAPSHOT_SHARDMERGE")
	if out == "" {
		t.Skip("set PDT_BENCH_SNAPSHOT_SHARDMERGE=<path> to write the benchmark snapshot")
	}

	inputs, err := workload.GenPDBCorpus(filepath.Join(t.TempDir(), "corpus"), benchUnits, benchHeaders, benchRoutines)
	if err != nil {
		t.Fatal(err)
	}

	assertFloor := runtime.NumCPU() >= 4
	snap := map[string]any{
		"generated_by":   "TestBenchSnapshotShardmerge",
		"corpus":         map[string]int{"units": benchUnits, "shared_headers": benchHeaders, "local_routines": benchRoutines},
		"num_cpu":        runtime.NumCPU(),
		"floor_asserted": assertFloor,
	}
	var golden []byte
	elapsed := map[int]time.Duration{}
	for _, shards := range []int{1, 2, 4, 8} {
		m := obs.New("shardmerge-bench")
		o := shardmerge.Options{
			Shards: shards,
			Dir:    filepath.Join(t.TempDir(), fmt.Sprintf("state-%d", shards)),
			// One merge goroutine per worker: the curve then measures
			// what the extra PROCESSES buy, not pdbio's internal pool.
			MergeWorkers: 1,
			WorkerArgv:   []string{os.Args[0]},
			WorkerEnv:    []string{workerEnv + "=1"},
			WorkerStderr: io.Discard,
			Metrics:      m,
		}
		outPath := filepath.Join(t.TempDir(), fmt.Sprintf("merged-%d.pdb", shards))
		start := time.Now()
		if err := shardmerge.MergeToFile(context.Background(), outPath, inputs, o); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		elapsed[shards] = time.Since(start)

		counters := m.Snapshot().Counters
		if counters["shard.fallback"] != 0 {
			t.Fatalf("%d shards: %d fallbacks poison the scaling measurement", shards, counters["shard.fallback"])
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
		} else if string(data) != string(golden) {
			t.Fatalf("%d shards: output differs from 1-shard baseline (%d vs %d bytes)",
				shards, len(data), len(golden))
		}
		secs := elapsed[shards].Seconds()
		snap[fmt.Sprintf("shards_%d_secs", shards)] = secs
		snap[fmt.Sprintf("shards_%d_units_per_sec", shards)] = float64(benchUnits) / secs
		t.Logf("%d shards: %.2fs (%.0f units/s)", shards, secs, float64(benchUnits)/secs)
	}

	for _, shards := range []int{2, 4, 8} {
		snap[fmt.Sprintf("speedup_%dx", shards)] = elapsed[1].Seconds() / elapsed[shards].Seconds()
	}
	speedup := elapsed[1].Seconds() / elapsed[4].Seconds()
	switch {
	case !assertFloor:
		t.Logf("only %d CPU(s): recording the curve but skipping the >=2x floor "+
			"(no process count can parallelize work one core must serialize)", runtime.NumCPU())
	case speedup < 2:
		t.Errorf("4-shard speedup %.2fx over 1 shard, want >= 2x", speedup)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
