package shardmerge_test

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pdt/internal/obs"
	"pdt/internal/pdbio"
	"pdt/internal/shardmerge"
	"pdt/internal/workload"
)

// The exec seam: the coordinator re-execs this very test binary, and
// TestMain dispatches on env sentinels before the testing framework
// touches the flags. workerEnv turns the process into a shard worker
// (manifest path = last argument); coordEnv turns it into a whole
// coordinator run, which the resume test kills mid-flight.
const (
	workerEnv = "PDT_TEST_SHARD_WORKER"
	coordEnv  = "PDT_TEST_SHARD_COORD"
)

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		os.Exit(shardmerge.WorkerMain(os.Args[len(os.Args)-1], os.Stderr))
	}
	if os.Getenv(coordEnv) == "1" {
		os.Exit(coordHelperMain())
	}
	os.Exit(m.Run())
}

// coordHelperMain runs a full coordinated merge from env-passed
// parameters. Used by the resume test, which SIGKILLs this process
// (and its worker children) partway through and then re-runs the same
// merge with Resume in the parent test process.
func coordHelperMain() int {
	dir := os.Getenv("PDT_TEST_COORD_DIR")
	out := os.Getenv("PDT_TEST_COORD_OUT")
	listData, err := os.ReadFile(os.Getenv("PDT_TEST_COORD_INPUTS"))
	if err != nil {
		return 1
	}
	inputs := strings.Fields(strings.TrimSpace(string(listData)))
	o := shardmerge.Options{
		Shards:       4,
		Dir:          dir,
		Heartbeat:    150 * time.Millisecond,
		Backoff:      5 * time.Millisecond,
		WorkerArgv:   []string{os.Args[0]},
		WorkerEnv:    []string{workerEnv + "=1"},
		MergeWorkers: 1,
	}
	if err := shardmerge.MergeToFile(context.Background(), out, inputs, o); err != nil {
		return 1
	}
	return 0
}

// genCorpus writes an n-unit PDB corpus with overlapping shared
// headers/routines (cross-shard dedup is what makes the merge
// non-trivial) and returns the unit paths.
func genCorpus(t *testing.T, n int) []string {
	t.Helper()
	inputs, err := workload.GenPDBCorpus(t.TempDir(), n, 3, 2)
	if err != nil {
		t.Fatalf("GenPDBCorpus: %v", err)
	}
	return inputs
}

// golden is the single-process merge every sharded run must match
// byte-for-byte.
func golden(t *testing.T, inputs []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pdbio.MergeFiles(context.Background(), &buf, inputs); err != nil {
		t.Fatalf("golden merge: %v", err)
	}
	return buf.Bytes()
}

// testOptions returns fast-timing Options wired to the test binary's
// worker mode. The heartbeat (and thus the 4x stale deadline) must
// comfortably cover re-exec'd process startup, which runs well over
// 100ms for a race-instrumented binary.
func testOptions(t *testing.T) shardmerge.Options {
	t.Helper()
	return shardmerge.Options{
		Dir:          t.TempDir(),
		Heartbeat:    150 * time.Millisecond,
		Backoff:      5 * time.Millisecond,
		WorkerArgv:   []string{os.Args[0]},
		WorkerEnv:    []string{workerEnv + "=1"},
		WorkerStderr: io.Discard,
		MergeWorkers: 2,
		Metrics:      obs.New("shardmerge-test"),
	}
}

func mergedBytes(t *testing.T, inputs []string, o shardmerge.Options) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "merged.pdb")
	if err := shardmerge.MergeToFile(context.Background(), out, inputs, o); err != nil {
		t.Fatalf("shardmerge.MergeToFile: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read merged: %v", err)
	}
	return data
}

func counter(t *testing.T, m *obs.Metrics, name string) int64 {
	t.Helper()
	return m.Snapshot().Counters[name]
}

// TestShardedMergeMatchesGolden is the core identity: at every shard
// count, multi-process output is byte-identical to the single-process
// merge over the same inputs.
func TestShardedMergeMatchesGolden(t *testing.T) {
	inputs := genCorpus(t, 17)
	want := golden(t, inputs)
	for _, shards := range []int{1, 2, 3, 8} {
		o := testOptions(t)
		o.Shards = shards
		got := mergedBytes(t, inputs, o)
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: output differs from single-process golden (%d vs %d bytes)",
				shards, len(got), len(want))
		}
		if c := counter(t, o.Metrics, "shard.completed"); c != int64(shards) {
			t.Errorf("shards=%d: shard.completed = %d, want %d", shards, c, shards)
		}
		if c := counter(t, o.Metrics, "shard.fallback"); c != 0 {
			t.Errorf("shards=%d: unexpected shard.fallback = %d", shards, c)
		}
	}
}

// TestShardedMergeBinaryOutput checks the identity holds for PDTB
// final output too (partials are always PDTB; this exercises the
// format option on the final k-way merge).
func TestShardedMergeBinaryOutput(t *testing.T) {
	inputs := genCorpus(t, 9)
	var want bytes.Buffer
	if err := pdbio.MergeFiles(context.Background(), &want, inputs,
		pdbio.WithFormat(pdbio.FormatBinary)); err != nil {
		t.Fatalf("golden binary merge: %v", err)
	}
	o := testOptions(t)
	o.Shards = 3
	o.Format = pdbio.FormatBinary
	if got := mergedBytes(t, inputs, o); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("binary sharded output differs from golden (%d vs %d bytes)", len(got), want.Len())
	}
}

// TestMergeFilesStream checks the io.Writer twin against the same
// golden.
func TestMergeFilesStream(t *testing.T) {
	inputs := genCorpus(t, 6)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 2
	var got bytes.Buffer
	if err := shardmerge.MergeFiles(context.Background(), &got, inputs, o); err != nil {
		t.Fatalf("MergeFiles: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("streamed sharded output differs from golden")
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {2, 1}, {10, 3}, {17, 8}, {16, 4}, {5, 5},
	} {
		ranges := shardmerge.Partition(tc.n, tc.k)
		if len(ranges) != tc.k {
			t.Fatalf("Partition(%d,%d): %d ranges, want %d", tc.n, tc.k, len(ranges), tc.k)
		}
		next, min, max := 0, tc.n, 0
		for _, r := range ranges {
			if r[0] != next {
				t.Fatalf("Partition(%d,%d): range starts at %d, want %d (must be contiguous)", tc.n, tc.k, r[0], next)
			}
			size := r[1] - r[0]
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("Partition(%d,%d): ranges end at %d, want %d", tc.n, tc.k, next, tc.n)
		}
		if max-min > 1 {
			t.Fatalf("Partition(%d,%d): shard sizes differ by %d (>1)", tc.n, tc.k, max-min)
		}
	}
}

func TestZeroInputsErrors(t *testing.T) {
	o := testOptions(t)
	o.Shards = 4
	err := shardmerge.MergeToFile(context.Background(), filepath.Join(t.TempDir(), "out.pdb"), nil, o)
	if err == nil {
		t.Fatal("expected error for zero inputs")
	}
}

func TestMissingDirErrors(t *testing.T) {
	o := testOptions(t)
	o.Dir = ""
	err := shardmerge.MergeToFile(context.Background(), filepath.Join(t.TempDir(), "out.pdb"), genCorpus(t, 2), o)
	if err == nil {
		t.Fatal("expected error for empty Options.Dir")
	}
}

// TestSingleUnitManyShards: shard count far beyond the unit count is
// clamped, not an error, and still matches golden.
func TestSingleUnitManyShards(t *testing.T) {
	inputs := genCorpus(t, 1)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 8
	if got := mergedBytes(t, inputs, o); !bytes.Equal(got, want) {
		t.Errorf("1 unit / 8 shards differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.completed"); c != 1 {
		t.Errorf("shard.completed = %d, want 1 (clamped)", c)
	}
}

// TestShardsExceedUnits: 8 shards over 3 units clamps to 3 workers.
func TestShardsExceedUnits(t *testing.T) {
	inputs := genCorpus(t, 3)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 8
	if got := mergedBytes(t, inputs, o); !bytes.Equal(got, want) {
		t.Errorf("3 units / 8 shards differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.completed"); c != 3 {
		t.Errorf("shard.completed = %d, want 3 (clamped)", c)
	}
}

// TestInProcessMode: no WorkerArgv means every shard merges in this
// process — the degraded mode, still golden.
func TestInProcessMode(t *testing.T) {
	inputs := genCorpus(t, 10)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 4
	o.WorkerArgv = nil
	if got := mergedBytes(t, inputs, o); !bytes.Equal(got, want) {
		t.Errorf("in-process sharded output differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.fallback"); c != 4 {
		t.Errorf("shard.fallback = %d, want 4 (every shard in-process)", c)
	}
}

// TestSpawnFailureFallsBack: an argv that can never exec burns the
// retry budget and degrades to in-process — the merge still succeeds
// and still matches golden.
func TestSpawnFailureFallsBack(t *testing.T) {
	inputs := genCorpus(t, 8)
	want := golden(t, inputs)
	o := testOptions(t)
	o.Shards = 2
	o.MaxRetries = 1
	o.Backoff = time.Millisecond
	o.WorkerArgv = []string{filepath.Join(t.TempDir(), "no-such-binary")}
	if got := mergedBytes(t, inputs, o); !bytes.Equal(got, want) {
		t.Errorf("spawn-failure fallback output differs from golden")
	}
	if c := counter(t, o.Metrics, "shard.fallback"); c != 2 {
		t.Errorf("shard.fallback = %d, want 2", c)
	}
	if c := counter(t, o.Metrics, "shard.reassigned"); c != 2 {
		t.Errorf("shard.reassigned = %d, want 2 (one retry per shard)", c)
	}
	if c := counter(t, o.Metrics, "shard.completed"); c != 2 {
		t.Errorf("shard.completed = %d, want 2", c)
	}
}

// TestStaleResultsNotAdopted: a Resume run over a *different* input
// set in the same state directory must not adopt the previous run's
// self-consistent partials/results — the InputsKey binding rejects
// them and the new corpus merges correctly.
func TestStaleResultsNotAdopted(t *testing.T) {
	first := genCorpus(t, 6)
	o := testOptions(t)
	o.Shards = 2
	out := filepath.Join(t.TempDir(), "merged.pdb")
	if err := shardmerge.MergeToFile(context.Background(), out, first, o); err != nil {
		t.Fatalf("first merge: %v", err)
	}

	second, err := workload.GenPDBCorpus(t.TempDir(), 9, 2, 3)
	if err != nil {
		t.Fatalf("GenPDBCorpus: %v", err)
	}
	want := golden(t, second)
	o.Resume = true // keep the stale shard-*.result.json and partials around
	o.Metrics = obs.New("second-run")
	if err := shardmerge.MergeToFile(context.Background(), out, second, o); err != nil {
		t.Fatalf("second merge: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed run over different inputs adopted stale shard state")
	}
}

// TestPartialCompositionProperty pins the algebra the whole design
// rests on: merging contiguous partial merges (at any bracketing, in
// either encoding) is byte-identical to one flat merge. If a future
// merge change breaks order-associativity or idempotence, this fails
// before any multi-process machinery gets involved.
func TestPartialCompositionProperty(t *testing.T) {
	inputs := genCorpus(t, 12)
	want := golden(t, inputs)
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		cuts   []int // partition boundaries (exclusive of 0 and len)
		format pdbio.Format
	}{
		{"halves-ascii", []int{6}, pdbio.FormatASCII},
		{"uneven-ascii", []int{1, 4, 11}, pdbio.FormatASCII},
		{"halves-binary", []int{6}, pdbio.FormatBinary},
		{"singletons-binary", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, pdbio.FormatBinary},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			bounds := append(append([]int{0}, tc.cuts...), len(inputs))
			var partials []string
			for i := 0; i+1 < len(bounds); i++ {
				p := filepath.Join(dir, "partial-"+tc.name+"-"+string(rune('a'+i))+".pdb")
				if err := pdbio.MergeToFile(ctx, p, inputs[bounds[i]:bounds[i+1]],
					pdbio.WithFormat(tc.format)); err != nil {
					t.Fatalf("partial merge: %v", err)
				}
				partials = append(partials, p)
			}
			var got bytes.Buffer
			if err := pdbio.MergeFiles(ctx, &got, partials); err != nil {
				t.Fatalf("merge of partials: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("merge of partials differs from flat merge")
			}
		})
	}

	// Idempotence: re-merging the merged database is a fixed point.
	merged := filepath.Join(t.TempDir(), "once.pdb")
	if err := pdbio.MergeToFile(ctx, merged, inputs); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := pdbio.MergeFiles(ctx, &again, []string{merged}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Errorf("re-merge of merged output is not a fixed point")
	}
}
