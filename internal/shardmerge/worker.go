package shardmerge

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pdt/internal/durable"
	"pdt/internal/faultio"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// Manifest is the coordinator→worker contract for one shard attempt:
// everything a re-exec'd worker process needs to produce its partial
// merge, serialized to a JSON file whose path is the worker's only
// argument. Paths are absolute or coordinator-cwd-relative (workers
// inherit the coordinator's working directory).
type Manifest struct {
	// Shard is the shard index (0-based), echoed into the Result so a
	// stale result file cannot satisfy another shard.
	Shard int `json:"shard"`
	// Inputs is this shard's contiguous slice of the merge units.
	Inputs []string `json:"inputs"`
	// Partial is where the shard's merged PDTB database lands.
	Partial string `json:"partial"`
	// Journal is the shared content-addressed checkpoint directory. All
	// shards journal into it, which is what makes a dead worker's
	// completed units reusable by whichever peer takes the shard over.
	Journal string `json:"journal"`
	// Lease is the worker's heartbeat lock file: flock-held while the
	// worker lives, mtime refreshed every Heartbeat.
	Lease string `json:"lease"`
	// Result is where the worker durably records its completion record.
	Result string `json:"result"`
	// HeartbeatMS is the lease refresh interval in milliseconds.
	HeartbeatMS int `json:"heartbeat_ms"`
	// Workers is the in-process merge parallelism (pdbio WithWorkers).
	Workers int `json:"workers"`

	// Load options, mirroring the coordinator's corpus flags.
	Strict       bool   `json:"strict,omitempty"`
	Lenient      bool   `json:"lenient,omitempty"`
	Quarantine   string `json:"quarantine,omitempty"`
	Retries      int    `json:"retries,omitempty"`
	BackoffMS    int    `json:"backoff_ms,omitempty"`
	MaxLineBytes int    `json:"max_line_bytes,omitempty"`
}

// Result is the worker→coordinator completion record, written durably
// as the worker's last act. Key is the content hash of the partial
// file, so the coordinator (or a resumed coordinator) can verify the
// partial on disk is exactly the one this record describes.
type Result struct {
	Shard int    `json:"shard"`
	Units int    `json:"units"`
	Key   string `json:"key"`
	// InputsKey fingerprints the shard's input set and the options
	// that can change merge output, so a result left by a previous run
	// over different inputs (or a different shard count) can never be
	// adopted, however self-consistent it looks.
	InputsKey   string `json:"inputs_key"`
	Written     int64  `json:"checkpoint_written"`
	Reused      int64  `json:"checkpoint_reused"`
	Invalidated int64  `json:"checkpoint_invalidated"`
	Recovered   int64  `json:"recovered"`
}

// inputsKey derives the manifest's result-binding fingerprint.
func (m *Manifest) inputsKey() string {
	parts := append([]string{"shardmerge-v1",
		fmt.Sprintf("lenient=%v maxline=%d", m.Lenient, m.MaxLineBytes)}, m.Inputs...)
	return durable.KeyOf(parts...)
}

// heartbeat resolves the manifest's interval with a floor: a zero or
// absurdly small interval would melt into mtime-update spam.
func (m *Manifest) heartbeat() time.Duration {
	hb := time.Duration(m.HeartbeatMS) * time.Millisecond
	if hb < 5*time.Millisecond {
		hb = time.Second
	}
	return hb
}

// WorkerMain runs one shard worker to completion: read the manifest,
// take the shard lease, heartbeat it, merge the shard's inputs into
// the partial under the shared journal (always resuming — reusing any
// checkpoints a previous holder of this shard completed before dying),
// and durably record the Result. The exit code is the process's entire
// answer: 0 with a verified Result file means the shard is done;
// anything else means the coordinator should retry. Chaos directives
// (faultio.ProcKillEnv) are honored at each named stage, which is how
// the SIGKILL sweeps exercise every supervision window.
func WorkerMain(manifestPath string, stderr io.Writer) int {
	m, err := readManifest(manifestPath)
	if err != nil {
		fmt.Fprintf(stderr, "shard worker: %v\n", err)
		return 1
	}
	faultio.CrashPoint("start")

	// The lease: flock proves exactly one live worker owns the shard;
	// the mtime heartbeat proves it is making progress. A dead previous
	// holder's flock is already gone; a wedged one forces the short
	// wait to fail, and the coordinator kills it before retrying. The
	// wait stays below the supervisor's stale deadline (4 heartbeats)
	// so a worker parked on a wedged predecessor exits and is retried
	// instead of being mistaken for wedged itself.
	lease, err := durable.AcquireLockWait(m.Lease, 2*m.heartbeat())
	if err != nil {
		fmt.Fprintf(stderr, "shard worker %d: lease: %v\n", m.Shard, err)
		return 1
	}
	defer lease.Release()
	lease.Touch() // first heartbeat lands before any merge work
	faultio.CrashPoint("lease")

	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(m.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				lease.Touch()
			case <-hbStop:
				return
			}
		}
	}()

	// Idempotent fast path: a previous holder that died between
	// writing its Result and exiting left everything durable; verify
	// and adopt instead of re-merging.
	if res, ok := loadResult(m.Result, m.Partial, m.Shard, m.inputsKey()); ok {
		res.Reused, res.Written = res.Written+res.Reused, 0 // all prior work reused
		if err := writeResult(m.Result, res); err != nil {
			fmt.Fprintf(stderr, "shard worker %d: result: %v\n", m.Shard, err)
			return 1
		}
		return 0
	}

	metrics := obs.New(fmt.Sprintf("shard-%d", m.Shard))
	var stats pdbio.Stats
	opts := []pdbio.Option{
		pdbio.WithWorkers(m.Workers),
		pdbio.WithCheckpoint(m.Journal, true), // always resume: takeover is the point
		pdbio.WithFormat(pdbio.FormatBinary),
		pdbio.WithMetrics(metrics),
		pdbio.WithStats(&stats),
	}
	if m.Strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	if m.Lenient {
		opts = append(opts, pdbio.WithLenient())
	}
	if m.Quarantine != "" {
		opts = append(opts, pdbio.WithQuarantine(m.Quarantine))
	}
	if m.Retries > 0 {
		opts = append(opts, pdbio.WithRetry(m.Retries, time.Duration(m.BackoffMS)*time.Millisecond))
	}
	if m.MaxLineBytes > 0 {
		opts = append(opts, pdbio.WithMaxLineBytes(m.MaxLineBytes))
	}
	if fs := faultio.ProcKillFS(nil); fs != nil {
		opts = append(opts, pdbio.WithWriteFS(fs))
	}

	if err := pdbio.MergeToFile(context.Background(), m.Partial, m.Inputs, opts...); err != nil {
		fmt.Fprintf(stderr, "shard worker %d: merge: %v\n", m.Shard, err)
		return 1
	}
	faultio.CrashPoint("merge")

	key, err := fileSum(m.Partial)
	if err != nil {
		fmt.Fprintf(stderr, "shard worker %d: hashing partial: %v\n", m.Shard, err)
		return 1
	}
	snap := metrics.Snapshot()
	res := Result{
		Shard:       m.Shard,
		Units:       len(m.Inputs),
		Key:         key,
		InputsKey:   m.inputsKey(),
		Written:     snap.Counters["checkpoint.written"],
		Reused:      snap.Counters["checkpoint.reused"],
		Invalidated: snap.Counters["checkpoint.invalidated"],
		Recovered:   stats.Recovered.Load(),
	}
	if err := writeResult(m.Result, res); err != nil {
		fmt.Fprintf(stderr, "shard worker %d: result: %v\n", m.Shard, err)
		return 1
	}
	faultio.CrashPoint("result")
	return 0
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

func writeResult(path string, res Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFile(path, data, 0o644)
}

// loadResult verifies a completion record against the partial on
// disk: right shard, right input set, partial present, content hash
// matching. Anything less reads as "no result" and the shard is
// (re)merged.
func loadResult(resultPath, partialPath string, shard int, inputsKey string) (Result, bool) {
	data, err := os.ReadFile(resultPath)
	if err != nil {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil || res.Shard != shard ||
		res.Key == "" || res.InputsKey != inputsKey {
		return Result{}, false
	}
	key, err := fileSum(partialPath)
	if err != nil || key != res.Key {
		return Result{}, false
	}
	return res, true
}

// fileSum is the content hash of a file — durable.Sum over its bytes.
func fileSum(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return durable.Sum(data), nil
}
