// Package schema pins the version of the toolkit's machine-readable
// output formats. Every JSON renderer — pdblint findings reports,
// pdbquery query results, obs metrics snapshots, and the pdbd HTTP
// responses built from them — stamps its top-level object with a
// "schema_version" field carrying Version, so HTTP clients and CLI
// consumers share one versioned contract.
//
// Stability contract: within one Version, fields are only ever added,
// never renamed, removed, or re-typed, and the meaning of existing
// fields does not change. Consumers must ignore unknown fields.
// Version is bumped on any breaking change, at which point renderers
// for the previous version are gone — clients pin the version they
// understand by checking the field, not by sniffing shapes.
package schema

// Version is the current output-schema version, shared by every JSON
// renderer in the toolkit.
const Version = 1
