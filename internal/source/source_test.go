package source

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestLineText(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddVirtualFile("t.cpp", "line one\nline two\r\nline three")
	cases := []struct {
		n    int
		want string
	}{
		{1, "line one"}, {2, "line two"}, {3, "line three"},
		{0, ""}, {4, ""},
	}
	for _, c := range cases {
		if got := f.LineText(c.n); got != c.want {
			t.Errorf("LineText(%d) = %q want %q", c.n, got, c.want)
		}
	}
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d", f.NumLines())
	}
}

func TestOffset(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddVirtualFile("t.cpp", "abc\ndefg\nhi")
	cases := []struct {
		line, col, want int
	}{
		{1, 1, 0}, {1, 3, 2}, {2, 1, 4}, {2, 4, 7}, {3, 2, 10},
		{0, 1, 0}, {9, 1, 11},
	}
	for _, c := range cases {
		if got := f.Offset(c.line, c.col); got != c.want {
			t.Errorf("Offset(%d,%d) = %d want %d", c.line, c.col, got, c.want)
		}
	}
}

// Property: Offset is monotone in (line, col) and always within the
// file extent.
func TestOffsetMonotoneProperty(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddVirtualFile("t.cpp", "one\ntwo three\n\nfour\nlast line here")
	check := func(l1, c1, l2, c2 uint8) bool {
		a := f.Offset(int(l1%8)+1, int(c1%20)+1)
		b := f.Offset(int(l2%8)+1, int(c2%20)+1)
		if a < 0 || a > len(f.Content) || b < 0 || b > len(f.Content) {
			return false
		}
		if int(l1%8) < int(l2%8) && a > b+20 {
			return false // earlier lines cannot be far beyond later lines
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLocOrdering(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddVirtualFile("t.cpp", "x\ny\n")
	a := Loc{File: f, Line: 1, Col: 5}
	b := Loc{File: f, Line: 2, Col: 1}
	c := Loc{File: f, Line: 1, Col: 9}
	if !a.Before(b) || b.Before(a) {
		t.Error("line ordering")
	}
	if !a.Before(c) || c.Before(a) {
		t.Error("column ordering")
	}
	g := fs.AddVirtualFile("u.cpp", "z\n")
	d := Loc{File: g, Line: 9, Col: 9}
	if a.Before(d) || d.Before(a) {
		t.Error("cross-file locations are unordered")
	}
	var zero Loc
	if zero.Valid() || zero.String() != "<unknown>" {
		t.Error("zero Loc")
	}
}

func TestResolveBuiltinAndVirtual(t *testing.T) {
	fs := NewFileSet()
	fs.RegisterBuiltin("vector", "// builtin vector")
	fs.AddVirtualFile("local.h", "// local")

	f, err := fs.Resolve("vector", true, nil)
	if err != nil || !f.System {
		t.Fatalf("builtin resolve: %v %+v", err, f)
	}
	// Second resolve returns the same instance.
	f2, _ := fs.Resolve("vector", true, nil)
	if f != f2 {
		t.Error("builtin not cached")
	}
	// Quoted include of a virtual file.
	l, err := fs.Resolve("local.h", false, nil)
	if err != nil || l.Name != "local.h" {
		t.Fatalf("virtual resolve: %v", err)
	}
	// Quoted include falls back to builtin as last resort.
	v, err := fs.Resolve("vector", false, nil)
	if err != nil || !v.System {
		t.Fatalf("quoted builtin fallback: %v", err)
	}
	if _, err := fs.Resolve("missing.h", false, nil); err == nil {
		t.Error("missing include should fail")
	}
}

func TestResolveDiskRelativeToIncluder(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	mainPath := filepath.Join(dir, "main.cpp")
	hdrPath := filepath.Join(sub, "dep.h")
	os.WriteFile(mainPath, []byte("int m;"), 0o644)
	os.WriteFile(hdrPath, []byte("int d;"), 0o644)

	fs := NewFileSet()
	mainF, err := fs.Load(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	// "sub/dep.h" relative to main.cpp's directory.
	dep, err := fs.Resolve("sub/dep.h", false, mainF)
	if err != nil {
		t.Fatalf("relative resolve: %v", err)
	}
	if string(dep.Content) != "int d;" {
		t.Errorf("content = %q", dep.Content)
	}
	// Same file via search path dedupes to the same instance.
	fs.SearchPaths = append(fs.SearchPaths, sub)
	dep2, err := fs.Resolve("dep.h", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dep2.Path != dep.Path {
		t.Error("search-path resolve found a different file")
	}
}

func TestAddVirtualFileReplaces(t *testing.T) {
	fs := NewFileSet()
	f1 := fs.AddVirtualFile("x.h", "old")
	f2 := fs.AddVirtualFile("x.h", "new content")
	if f1 != f2 {
		t.Error("replacement must reuse the File instance")
	}
	if f2.LineText(1) != "new content" {
		t.Error("content not replaced / line index not invalidated")
	}
	if len(fs.Files()) != 1 {
		t.Error("duplicate file registered")
	}
}

func TestSortedNames(t *testing.T) {
	fs := NewFileSet()
	fs.AddVirtualFile("b.h", "")
	fs.AddVirtualFile("a.h", "")
	names := fs.SortedNames()
	if len(names) != 2 || names[0] != "a.h" || names[1] != "b.h" {
		t.Errorf("names = %v", names)
	}
}

func TestSpanString(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddVirtualFile("s.cpp", "abc")
	sp := Span{Begin: Loc{File: f, Line: 1, Col: 2}, End: Loc{File: f, Line: 3, Col: 4}}
	if !sp.Valid() {
		t.Error("span should be valid")
	}
	var zero Span
	if zero.Valid() || zero.String() != "<unknown>" {
		t.Error("zero span")
	}
}
