// Package source implements the source manager used by every stage of the
// PDT pipeline. It owns the set of files a translation unit touches,
// assigns them stable identifiers, resolves #include references against
// search paths and built-in system headers, and defines the position
// types (Loc, Span) that the lexer, parser, IL, and program database all
// carry. Positions are 1-based line/column pairs, matching the PDB format
// of the paper (Figure 3).
package source

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is a single source file known to a FileSet. A File may be backed
// by the file system or by an in-memory buffer (built-in system headers,
// tests, generated code).
type File struct {
	// Name is the name the file was requested as (e.g. "StackAr.h" or
	// "/pdt/include/kai/vector.h"). It is the name reported in PDB items.
	Name string
	// Path is the resolved absolute path for disk-backed files, or ""
	// for in-memory files.
	Path string
	// System reports whether the file was included as a system header
	// (<...> or registered built-in).
	System bool
	// Content is the raw bytes of the file.
	Content []byte

	// Includes lists the files directly included by this file, in
	// textual order. Populated by the preprocessor.
	Includes []*File

	mu    sync.Mutex
	lines []int // byte offsets of line starts, computed lazily
}

// Loc is a source location: a file plus 1-based line and column.
// The zero Loc (nil file) is "no location", rendered as "NULL 0 0" in
// PDB output, mirroring the paper's Figure 3.
type Loc struct {
	File *File
	Line int
	Col  int
}

// Valid reports whether the location refers to a real file position.
func (l Loc) Valid() bool { return l.File != nil && l.Line > 0 }

// String renders the location for diagnostics ("file:line:col").
func (l Loc) String() string {
	if !l.Valid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", l.File.Name, l.Line, l.Col)
}

// Before reports whether l appears strictly before other within the same
// file. Locations in different files are not ordered and return false.
func (l Loc) Before(other Loc) bool {
	if l.File != other.File || l.File == nil {
		return false
	}
	if l.Line != other.Line {
		return l.Line < other.Line
	}
	return l.Col < other.Col
}

// Span is a source extent: [Begin, End]. PDB "pos" attributes are pairs
// of spans (header span, body span).
type Span struct {
	Begin Loc
	End   Loc
}

// Valid reports whether the span has a valid beginning.
func (s Span) Valid() bool { return s.Begin.Valid() }

func (s Span) String() string {
	if !s.Valid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s-%d:%d", s.Begin, s.End.Line, s.End.Col)
}

// LineText returns the text of the 1-based line n, without its
// terminating newline. It returns "" for out-of-range lines.
func (f *File) LineText(n int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buildLineIndex()
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1 // strip '\n'
	}
	text := string(f.Content[start:end])
	return strings.TrimSuffix(text, "\r")
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buildLineIndex()
	return len(f.lines)
}

// Offset converts a (line, col) pair into a byte offset, clamped to the
// file extent.
func (f *File) Offset(line, col int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buildLineIndex()
	if line < 1 {
		return 0
	}
	if line > len(f.lines) {
		return len(f.Content)
	}
	off := f.lines[line-1] + col - 1
	if off > len(f.Content) {
		off = len(f.Content)
	}
	if off < 0 {
		off = 0
	}
	return off
}

func (f *File) buildLineIndex() {
	if f.lines != nil {
		return
	}
	f.lines = append(f.lines, 0)
	for i, b := range f.Content {
		if b == '\n' && i+1 < len(f.Content) {
			f.lines = append(f.lines, i+1)
		}
	}
}

// FileSet owns every file of a translation unit. It resolves includes
// against user search paths, the including file's directory, and a
// registry of built-in ("system") headers that stands in for the KAI
// standard library headers the paper ships with PDT 1.3.
type FileSet struct {
	mu sync.Mutex
	// SearchPaths are directories tried for both "..." and <...> forms.
	SearchPaths []string
	// builtin maps header names (e.g. "vector") to their content.
	builtin map[string]string

	files  []*File
	byName map[string]*File
}

// NewFileSet returns an empty file set with no search paths.
func NewFileSet() *FileSet {
	return &FileSet{
		builtin: make(map[string]string),
		byName:  make(map[string]*File),
	}
}

// RegisterBuiltin registers an in-memory system header, available to
// #include <name> (and #include "name" as a last resort).
func (fs *FileSet) RegisterBuiltin(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.builtin[name] = content
}

// AddVirtualFile adds an in-memory file under the given name and returns
// it. If a file of that name already exists its content is replaced.
func (fs *FileSet) AddVirtualFile(name, content string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.byName[name]; ok {
		f.Content = []byte(content)
		f.lines = nil
		return f
	}
	f := &File{Name: name, Content: []byte(content)}
	fs.files = append(fs.files, f)
	fs.byName[name] = f
	return f
}

// Load opens the named file from disk (or returns the already-loaded
// instance). The name is recorded as given; the path is resolved to an
// absolute path.
func (fs *FileSet) Load(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.byName[name]; ok {
		return f, nil
	}
	content, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	abs, _ := filepath.Abs(name)
	f := &File{Name: name, Path: abs, Content: content}
	fs.files = append(fs.files, f)
	fs.byName[name] = f
	return f, nil
}

// Resolve resolves an #include reference. The spelling is the text
// between the delimiters; system reports the <...> form; from is the
// file containing the directive (may be nil).
//
// Lookup order for "..." includes: directory of the including file, the
// search paths, already-registered virtual files, then built-in headers.
// For <...> includes: built-in headers first, then search paths.
func (fs *FileSet) Resolve(spelling string, system bool, from *File) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	if !system {
		if from != nil && from.Path != "" {
			cand := filepath.Join(filepath.Dir(from.Path), spelling)
			if f := fs.loadDiskLocked(spelling, cand); f != nil {
				return f, nil
			}
		}
		for _, dir := range fs.SearchPaths {
			cand := filepath.Join(dir, spelling)
			if f := fs.loadDiskLocked(spelling, cand); f != nil {
				return f, nil
			}
		}
		if f, ok := fs.byName[spelling]; ok {
			return f, nil
		}
	}
	if content, ok := fs.builtin[spelling]; ok {
		name := "/pdt/include/kai/" + spelling
		if f, ok := fs.byName[name]; ok {
			return f, nil
		}
		f := &File{Name: name, System: true, Content: []byte(content)}
		fs.files = append(fs.files, f)
		fs.byName[name] = f
		return f, nil
	}
	if system {
		for _, dir := range fs.SearchPaths {
			cand := filepath.Join(dir, spelling)
			if f := fs.loadDiskLocked(spelling, cand); f != nil {
				return f, nil
			}
		}
		if f, ok := fs.byName[spelling]; ok {
			return f, nil
		}
	}
	return nil, fmt.Errorf("include not found: %q", spelling)
}

func (fs *FileSet) loadDiskLocked(name, path string) *File {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil
	}
	for _, f := range fs.files {
		if f.Path == abs {
			return f
		}
	}
	content, err := os.ReadFile(abs)
	if err != nil {
		return nil
	}
	f := &File{Name: name, Path: abs, Content: content}
	fs.files = append(fs.files, f)
	fs.byName[f.Name] = f
	return f
}

// Files returns all files in the set, in registration order.
func (fs *FileSet) Files() []*File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]*File, len(fs.files))
	copy(out, fs.files)
	return out
}

// Lookup returns the file registered under name, or nil.
func (fs *FileSet) Lookup(name string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.byName[name]
}

// SortedNames returns the names of all files, sorted, for deterministic
// reporting.
func (fs *FileSet) SortedNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for _, f := range fs.files {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
