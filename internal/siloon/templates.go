package siloon

import (
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
)

// This file implements the extension the paper proposes in §4.2/§6:
// "A useful extension to PDT would be to provide access to all
// templates, whether instantiated or not. SILOON could then present a
// template list to the user, and automatically generate instantiations
// of selected templates."

// TemplateInfo describes one class template available for wrapping.
type TemplateInfo struct {
	Name string
	// Text is the template's declaration text from the PDB.
	Text string
	// Instantiated lists the instantiations already present in the
	// parsed code (immediately wrappable).
	Instantiated []string
}

// ListClassTemplates presents the template list of the proposed
// extension: every class template in the database with its existing
// instantiations.
func ListClassTemplates(db *ductape.PDB) []TemplateInfo {
	var out []TemplateInfo
	for _, te := range db.Templates() {
		if te.Kind() != ductape.TE_CLASS {
			continue
		}
		if loc := te.Location(); loc.File != nil && loc.File.System() {
			continue
		}
		info := TemplateInfo{Name: te.Name(), Text: te.Text()}
		for _, c := range te.InstantiatedClasses() {
			info.Instantiated = append(info.Instantiated, c.Name())
		}
		sort.Strings(info.Instantiated)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InstantiationRequest asks for one new instantiation of a template.
type InstantiationRequest struct {
	Template string
	// Args are the C++ template arguments ("double", "int", "Stack<int>").
	Args []string
}

// GenerateInstantiations renders the explicit-instantiation
// translation-unit text that makes the requested instantiations
// available to SILOON ("template class Stack<double>;"). Compiling the
// library together with this text and regenerating bindings exposes
// the new instantiations to scripts.
func GenerateInstantiations(reqs []InstantiationRequest) string {
	var sb strings.Builder
	sb.WriteString("// SILOON-generated explicit instantiations (PDT extension, paper §6).\n")
	for _, r := range reqs {
		fmt.Fprintf(&sb, "template class %s<%s>;\n", r.Template, strings.Join(r.Args, ", "))
	}
	return sb.String()
}

// DescribeTemplates renders the template list for the user (the
// "present a template list to the user" half of the extension).
func DescribeTemplates(infos []TemplateInfo) string {
	var sb strings.Builder
	for _, info := range infos {
		fmt.Fprintf(&sb, "%s\n", info.Name)
		if info.Text != "" {
			fmt.Fprintf(&sb, "    %s\n", info.Text)
		}
		if len(info.Instantiated) == 0 {
			sb.WriteString("    (no instantiations — request one to make it scriptable)\n")
		}
		for _, inst := range info.Instantiated {
			fmt.Fprintf(&sb, "    instantiated: %s\n", inst)
		}
	}
	return sb.String()
}
