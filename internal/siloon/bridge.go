package siloon

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pdt/internal/il"
	"pdt/internal/interp"
	"pdt/internal/script"
)

// Bridge is SILOON's routine-management structure: it connects a slang
// interpreter to a C++ library running on the PDT interpreter. Wrapper
// functions in the script call ccall(mangled, ...), which the bridge
// dispatches to constructors, methods, or free functions, converting
// values in both directions and managing object handles.
type Bridge struct {
	cpp      *interp.Interp
	unit     *il.Unit
	bindings *Bindings

	// registered records the entries announced by the library's
	// generated __siloon_init glue (__pdt_siloon_register calls).
	registered map[string]bool

	handles map[int]*interp.Object
	nextH   int

	classIndex map[string]*il.Class
}

// NewBridge wires a C++ unit (library + compiled glue) to a fresh slang
// interpreter. The returned script interpreter has ccall and the
// dispatcher installed; run the generated wrapper module on it first.
func NewBridge(unit *il.Unit, bindings *Bindings, out io.Writer) (*Bridge, *script.Interp, error) {
	br := &Bridge{
		unit:       unit,
		bindings:   bindings,
		registered: map[string]bool{},
		handles:    map[int]*interp.Object{},
		classIndex: map[string]*il.Class{},
	}
	for _, c := range unit.AllClasses {
		br.classIndex[c.QualifiedName()] = c
	}

	br.cpp = interp.New(unit, interp.Options{Out: out})
	br.cpp.RegisterIntrinsic("__pdt_siloon_register",
		func(_ *interp.Interp, _ *interp.Object, args []interp.Value) (interp.Value, error) {
			if len(args) >= 1 {
				if s, ok := interpStr(args[0]); ok {
					br.registered[s] = true
				}
			}
			return interp.Null{}, nil
		})
	if err := br.cpp.InitGlobals(); err != nil {
		return nil, nil, fmt.Errorf("library init: %w", err)
	}
	// Run the generated registration glue, if compiled in.
	if _, err := br.cpp.CallFree("__siloon_init", nil); err == nil {
		// registered table populated
	} else {
		// No glue compiled in: register everything from the manifest.
		for _, b := range bindings.Items {
			br.registered[b.Mangled] = true
		}
	}

	sc := script.NewInterp(out)
	sc.Dispatcher = br
	sc.RegisterBuiltin("ccall", func(_ *script.Interp, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, fmt.Errorf("ccall: missing entry name")
		}
		name, ok := args[0].(script.Str)
		if !ok {
			return nil, fmt.Errorf("ccall: first argument must be the entry name")
		}
		return br.Dispatch(string(name), args[1:])
	})
	return br, sc, nil
}

// CPP exposes the underlying C++ interpreter (for tests and tools).
func (br *Bridge) CPP() *interp.Interp { return br.cpp }

// LiveObjects reports how many handles are outstanding.
func (br *Bridge) LiveObjects() int { return len(br.handles) }

// Dispatch routes one bridge call.
func (br *Bridge) Dispatch(mangled string, args []script.Value) (script.Value, error) {
	if !br.registered[mangled] {
		return nil, fmt.Errorf("ccall: entry %q is not registered with the bridge", mangled)
	}
	b := br.bindings.Lookup(mangled)
	if b == nil {
		return nil, fmt.Errorf("ccall: no binding for %q", mangled)
	}
	switch b.Kind {
	case KindCtor:
		cls := br.classIndex[b.Class]
		if cls == nil {
			return nil, fmt.Errorf("ccall: class %q not in library", b.Class)
		}
		cppArgs, err := br.toCPPArgs(args)
		if err != nil {
			return nil, err
		}
		obj, err := br.cpp.Construct(cls, cppArgs)
		if err != nil {
			return nil, fmt.Errorf("constructing %s: %w", b.Class, err)
		}
		return br.newHandle(obj), nil
	case KindDtor:
		if len(args) != 1 {
			return nil, fmt.Errorf("delete expects the object handle")
		}
		f, ok := args[0].(script.Foreign)
		if !ok {
			return nil, fmt.Errorf("delete of non-object %s", script.Format(args[0]))
		}
		obj, ok := br.handles[f.Handle]
		if !ok {
			return nil, fmt.Errorf("stale object handle %d", f.Handle)
		}
		if err := br.cpp.Destroy(obj); err != nil {
			return nil, err
		}
		delete(br.handles, f.Handle)
		return script.Nil{}, nil
	case KindMethod:
		if len(args) < 1 {
			return nil, fmt.Errorf("method %s expects a receiver", b.Routine)
		}
		f, ok := args[0].(script.Foreign)
		if !ok {
			return nil, fmt.Errorf("method receiver is not an object")
		}
		obj, ok := br.handles[f.Handle]
		if !ok {
			return nil, fmt.Errorf("stale object handle %d", f.Handle)
		}
		cppArgs, err := br.toCPPArgs(args[1:])
		if err != nil {
			return nil, err
		}
		ret, err := br.cpp.CallMethod(obj, b.Routine, cppArgs)
		if err != nil {
			return nil, fmt.Errorf("calling %s::%s: %w", b.Class, b.Routine, err)
		}
		return br.toScript(ret), nil
	case KindStatic, KindFree:
		cppArgs, err := br.toCPPArgs(args)
		if err != nil {
			return nil, err
		}
		name := b.Routine
		if b.Kind == KindStatic {
			// Static members dispatch through a class method lookup on
			// a throwaway receiver-less call.
			cls := br.classIndex[b.Class]
			if cls == nil {
				return nil, fmt.Errorf("class %q not in library", b.Class)
			}
			for _, m := range cls.Methods {
				if m.Name == b.Routine && m.Static {
					v, err := br.cpp.Call(m, nil, cppArgs)
					if err != nil {
						return nil, err
					}
					return br.toScript(v), nil
				}
			}
			return nil, fmt.Errorf("no static method %s::%s", b.Class, b.Routine)
		}
		ret, err := br.cpp.CallFree(name, cppArgs)
		if err != nil {
			return nil, err
		}
		return br.toScript(ret), nil
	default:
		return nil, fmt.Errorf("unknown binding kind %q", b.Kind)
	}
}

// CallMethod implements script.MethodDispatcher: obj.method(args)
// sugar routes through the same bindings as the wrapper functions.
func (br *Bridge) CallMethod(obj script.Foreign, method string, args []script.Value) (script.Value, error) {
	target, ok := br.handles[obj.Handle]
	if !ok {
		return nil, fmt.Errorf("stale object handle %d", obj.Handle)
	}
	cppArgs, err := br.toCPPArgs(args)
	if err != nil {
		return nil, err
	}
	ret, err := br.cpp.CallMethod(target, method, cppArgs)
	if err != nil {
		return nil, err
	}
	return br.toScript(ret), nil
}

func (br *Bridge) newHandle(obj *interp.Object) script.Foreign {
	br.nextH++
	br.handles[br.nextH] = obj
	return script.Foreign{Handle: br.nextH, Class: obj.Class.QualifiedName()}
}

// toCPPArgs converts slang values to interpreter values. Integral
// numbers become Int so integer overloads are preferred; fractional
// numbers become Float.
func (br *Bridge) toCPPArgs(args []script.Value) ([]interp.Value, error) {
	out := make([]interp.Value, 0, len(args))
	for _, a := range args {
		v, err := br.toCPP(a)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (br *Bridge) toCPP(v script.Value) (interp.Value, error) {
	switch v := v.(type) {
	case script.Num:
		f := float64(v)
		if f == math.Trunc(f) && math.Abs(f) < 1e18 {
			return interp.Int(int64(f)), nil
		}
		return interp.Float(f), nil
	case script.Str:
		return interp.Str(v), nil
	case script.Bool:
		return interp.Bool(v), nil
	case script.Nil:
		return interp.Null{}, nil
	case script.Foreign:
		obj, ok := br.handles[v.Handle]
		if !ok {
			return nil, fmt.Errorf("stale object handle %d", v.Handle)
		}
		return obj, nil
	default:
		return nil, fmt.Errorf("cannot pass %s to C++", script.Format(v))
	}
}

func (br *Bridge) toScript(v interp.Value) script.Value {
	switch v := v.(type) {
	case interp.Int:
		return script.Num(v)
	case interp.Char:
		return script.Str(string(rune(v)))
	case interp.Float:
		return script.Num(v)
	case interp.Bool:
		return script.Bool(v)
	case interp.Str:
		return script.Str(v)
	case *interp.Object:
		return br.newHandle(v)
	case interp.Ptr:
		if p, err := v.Pointee(); err == nil {
			if obj, ok := p.(*interp.Object); ok {
				return br.newHandle(obj)
			}
		}
		return script.Nil{}
	default:
		return script.Nil{}
	}
}

func interpStr(v interp.Value) (string, bool) {
	if s, ok := v.(interp.Str); ok {
		return string(s), true
	}
	if s := interp.FormatValue(v); s != "" {
		return s, true
	}
	return "", false
}

// RunScript is the one-call convenience used by tools and tests: it
// loads the wrapper module then runs the user script.
func RunScript(sc *script.Interp, bindings *Bindings, userScript string) error {
	if err := sc.Run(bindings.WrapperScript); err != nil {
		return fmt.Errorf("wrapper module: %w", err)
	}
	return sc.Run(userScript)
}

// Describe renders the binding table (for siloongen -list).
func (b *Bindings) Describe() string {
	var sb strings.Builder
	for _, item := range b.Items {
		target := item.Class
		if item.Kind != KindCtor && item.Kind != KindDtor {
			if target != "" {
				target += "::"
			}
			target += item.Routine
		}
		fmt.Fprintf(&sb, "%-40s %-7s %s (%d args)\n",
			item.Mangled, item.Kind, target, len(item.Params))
	}
	return sb.String()
}
