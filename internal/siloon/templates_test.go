package siloon_test

import (
	"strings"
	"testing"
	"testing/quick"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/siloon"
)

// TestTemplateListExtension exercises the paper's proposed §6
// extension end-to-end: list templates (including uninstantiated
// ones), request an instantiation, recompile with the generated
// explicit-instantiation unit, and wrap the new instantiation.
func TestTemplateListExtension(t *testing.T) {
	lib := `
template <class T>
class Ring {
public:
    Ring(int n) : size_(n) { }
    int capacity() const { return size_; }
private:
    int size_;
};
class Plain { public: int id() const { return 1; } };
int main() { return 0; }
`
	compileDB := func(src string) (*core.Result, *ductape.PDB) {
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		res := core.CompileSource(fs, "lib.cpp", src, opts)
		if res.HasErrors() {
			t.Fatalf("compile: %v", res.Diagnostics[0])
		}
		return res, ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	}

	// Phase 1: Ring is listed with no instantiations.
	_, db := compileDB(lib)
	infos := siloon.ListClassTemplates(db)
	if len(infos) != 1 || infos[0].Name != "Ring" {
		t.Fatalf("templates = %+v", infos)
	}
	if len(infos[0].Instantiated) != 0 {
		t.Errorf("Ring should have no instantiations yet: %v", infos[0].Instantiated)
	}
	desc := siloon.DescribeTemplates(infos)
	if !strings.Contains(desc, "no instantiations") {
		t.Errorf("description:\n%s", desc)
	}
	// Without instantiations, no Ring binding exists.
	b := siloon.Generate(db, siloon.Options{})
	if b.Lookup("new__Ring_double") != nil {
		t.Error("uninstantiated template must not be wrapped")
	}

	// Phase 2: the user selects Ring<double>; SILOON generates the
	// explicit instantiation and the library is recompiled with it.
	gen := siloon.GenerateInstantiations([]siloon.InstantiationRequest{
		{Template: "Ring", Args: []string{"double"}},
	})
	if !strings.Contains(gen, "template class Ring<double>;") {
		t.Fatalf("generated: %q", gen)
	}
	res2, db2 := compileDB(lib + "\n" + gen)
	infos2 := siloon.ListClassTemplates(db2)
	if len(infos2[0].Instantiated) != 1 || infos2[0].Instantiated[0] != "Ring<double>" {
		t.Fatalf("after instantiation: %+v", infos2)
	}

	// Phase 3: the new instantiation is scriptable.
	b2 := siloon.Generate(db2, siloon.Options{})
	if b2.Lookup("new__Ring_double") == nil {
		t.Fatalf("Ring<double> not wrapped:\n%s", b2.Describe())
	}
	var out strings.Builder
	_, sc, err := siloon.NewBridge(res2.Unit, b2, &out)
	if err != nil {
		t.Fatal(err)
	}
	err = siloon.RunScript(sc, b2, `
r = Ring_double_new(17);
print(r.capacity());
Ring_double_delete(r);
`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "17" {
		t.Errorf("output = %q", out.String())
	}
}

// Property: Mangle emits only script-safe identifier characters and is
// stable (idempotent on already-mangled names).
func TestMangleProperty(t *testing.T) {
	safe := func(s string) bool {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				return false
			}
		}
		return true
	}
	f := func(raw string) bool {
		m := siloon.Mangle(raw)
		if !safe(m) {
			t.Logf("Mangle(%q) = %q contains unsafe characters", raw, m)
			return false
		}
		// Idempotence: mangling a mangled name does not change it
		// (underscore runs are already collapsed).
		if siloon.Mangle(m) != m {
			t.Logf("Mangle not idempotent: %q -> %q -> %q", raw, m, siloon.Mangle(m))
			return false
		}
		// No leading/trailing underscores.
		if strings.HasPrefix(m, "_") || strings.HasSuffix(m, "_") {
			t.Logf("Mangle(%q) = %q has edge underscores", raw, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: distinct realistic template-ids keep distinct mangled
// names (no silent collisions among the names SILOON actually wraps).
func TestMangleDistinguishesRealisticNames(t *testing.T) {
	names := []string{
		"Stack<int>", "Stack<double>", "Stack<char>", "Stack<int *>",
		"Stack<const int>", "Stack<Stack<int>>", "Pair<int, int>",
		"Pair<int, double>", "ns::Stack<int>", "Stack", "Stackint",
		"Arr<int, 4>", "Arr<int, 8>",
	}
	seen := map[string]string{}
	for _, n := range names {
		m := siloon.Mangle(n)
		if prev, ok := seen[m]; ok {
			t.Errorf("collision: %q and %q both mangle to %q", prev, n, m)
		}
		seen[m] = n
	}
}
