package siloon_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/il"
	"pdt/internal/ilanalyzer"
	"pdt/internal/script"
	"pdt/internal/siloon"
)

// numericsLib is a small scientific library in the supported subset —
// the stand-in for the high-performance libraries SILOON wraps.
const numericsLib = `
class Accumulator {
public:
    Accumulator() : total(0), n(0) { }
    void add(double x) { total += x; n++; }
    double sum() const { return total; }
    double mean() const { return n > 0 ? total / n : 0.0; }
    int count() const { return n; }
private:
    double total;
    int n;
};

class Matrix2 {
public:
    Matrix2(double a, double b, double c, double d)
        : a_(a), b_(b), c_(c), d_(d) { }
    double det() const { return a_ * d_ - b_ * c_; }
    double trace() const { return a_ + d_; }
private:
    double a_, b_, c_, d_;
};

template <class T>
class Pair {
public:
    Pair(T a, T b) : first(a), second(b) { }
    T min() const { return first < second ? first : second; }
    T max() const { return first < second ? second : first; }
private:
    T first;
    T second;
};

double hypot2(double a, double b) { return a * a + b * b; }

// Explicit instantiation makes Pair<double> available to SILOON, as
// the paper requires ("the user must explicitly instantiate such
// templates in the parsed code").
template class Pair<double>;
int main() { return 0; }
`

func compileLib(t *testing.T, extraGlue string) (*il.Unit, *ductape.PDB) {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	src := numericsLib
	if extraGlue != "" {
		fs.AddVirtualFile("glue.cpp", extraGlue)
		src = numericsLib + "\n#include \"glue.cpp\"\n"
	}
	res := core.CompileSource(fs, "lib.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	return res.Unit, ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

func TestMangle(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Stack<int>", "Stack_int"},
		{"Pair<double>", "Pair_double"},
		{"vector<Stack<double>>", "vector_Stack_double"},
		{"ns::Klass", "ns_Klass"},
		{"Stack<const char *>", "Stack_constchar_ptr"},
		{"plain", "plain"},
		{"Arr<int, 16>", "Arr_int_16"},
	}
	for _, c := range cases {
		if got := siloon.Mangle(c.in); got != c.want {
			t.Errorf("Mangle(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := siloon.MangleRoutine("operator[]"); got != "op_index" {
		t.Errorf("MangleRoutine operator[] = %q", got)
	}
	if got := siloon.MangleRoutine("operator+"); got != "op_add" {
		t.Errorf("MangleRoutine operator+ = %q", got)
	}
}

func TestGenerateBindings(t *testing.T) {
	_, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{IncludeFree: true})

	// Wrapper module contains natural wrapper functions.
	for _, want := range []string{
		"def Accumulator_new()",
		"def Accumulator_add(self, p0)",
		"def Accumulator_mean(self)",
		"def Matrix2_new(p0, p1, p2, p3)",
		"def Pair_double_new(p0, p1)",
		"def Pair_double_min(self)",
		"def hypot2(p0, p1)",
		`ccall("new__Accumulator")`,
	} {
		if !strings.Contains(b.WrapperScript, want) {
			t.Errorf("wrapper module missing %q:\n%s", want, b.WrapperScript)
		}
	}
	// Glue registers every binding.
	for _, want := range []string{
		"__siloon_init",
		`__pdt_siloon_register("new__Accumulator"`,
		`__pdt_siloon_register("Accumulator__add"`,
		`__pdt_siloon_register("fn__hypot2"`,
	} {
		if !strings.Contains(b.GlueSource, want) {
			t.Errorf("glue missing %q:\n%s", want, b.GlueSource)
		}
	}
	if b.Lookup("new__Matrix2") == nil || b.Lookup("Pair_double__max") == nil {
		t.Errorf("binding table incomplete:\n%s", b.Describe())
	}
}

// TestScriptDrivesLibrary is experiment E9 (Figure 8): a slang script
// calls into the C++ library through generated wrappers and the bridge.
func TestScriptDrivesLibrary(t *testing.T) {
	unit, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{IncludeFree: true})

	// Compile the glue into the library image (second compile with the
	// generated registration code), as the paper's flow does.
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	fs.AddVirtualFile("glue.cpp", b.GlueSource)
	res := core.CompileSource(fs, "lib.cpp", numericsLib+"\n#include \"glue.cpp\"\n", opts)
	if res.HasErrors() {
		t.Fatalf("glue compile: %v", res.Diagnostics[0])
	}
	unit = res.Unit

	var out strings.Builder
	_, sc, err := siloon.NewBridge(unit, b, &out)
	if err != nil {
		t.Fatal(err)
	}
	userScript := `
acc = Accumulator_new();
Accumulator_add(acc, 1.5);
Accumulator_add(acc, 2.5);
Accumulator_add(acc, 6);
print("sum", Accumulator_sum(acc));
print("mean", Accumulator_mean(acc));
print("count", Accumulator_count(acc));

m = Matrix2_new(1, 2, 3, 4);
print("det", Matrix2_det(m));
print("trace", Matrix2_trace(m));

p = Pair_double_new(3.5, 1.25);
print("min", Pair_double_min(p));
print("max", Pair_double_max(p));

print("hypot2", hypot2(3, 4));

Accumulator_delete(acc);
Matrix2_delete(m);
Pair_double_delete(p);
`
	if err := siloon.RunScript(sc, b, userScript); err != nil {
		t.Fatal(err)
	}
	want := `sum 10
mean 3.3333333333333335
count 3
det -2
trace 5
min 1.25
max 3.5
hypot2 25
`
	if out.String() != want {
		t.Errorf("script output:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestMethodSugar(t *testing.T) {
	unit, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{})
	var out strings.Builder
	br, sc, err := siloon.NewBridge(unit, b, &out)
	if err != nil {
		t.Fatal(err)
	}
	userScript := `
acc = Accumulator_new();
acc.add(2);
acc.add(4);
print(acc.sum(), acc.count());
Accumulator_delete(acc);
`
	if err := siloon.RunScript(sc, b, userScript); err != nil {
		t.Fatal(err)
	}
	if out.String() != "6 2\n" {
		t.Errorf("out = %q", out.String())
	}
	if br.LiveObjects() != 0 {
		t.Errorf("leaked handles: %d", br.LiveObjects())
	}
}

func TestStaleHandleRejected(t *testing.T) {
	unit, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{})
	_, sc, err := siloon.NewBridge(unit, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = siloon.RunScript(sc, b, `
acc = Accumulator_new();
Accumulator_delete(acc);
Accumulator_add(acc, 1);
`)
	if err == nil || !strings.Contains(err.Error(), "stale object handle") {
		t.Errorf("err = %v", err)
	}
}

func TestUnregisteredEntryRejected(t *testing.T) {
	unit, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{Classes: []string{"Accumulator"}})
	_, sc, err := siloon.NewBridge(unit, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = sc.Run(`ccall("new__Matrix2");`)
	if err == nil {
		t.Error("expected rejection of unregistered entry")
	}
}

func TestRestrictedClassList(t *testing.T) {
	_, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{Classes: []string{"Matrix2"}})
	if b.Lookup("new__Matrix2") == nil {
		t.Error("Matrix2 not wrapped")
	}
	if b.Lookup("new__Accumulator") != nil {
		t.Error("Accumulator should not be wrapped")
	}
	_ = script.Nil{}
}

func TestTemplateInstantiationOnlyAvailable(t *testing.T) {
	// Pair<double> was explicitly instantiated; Pair<int> was not and
	// must be absent — the paper's stated limitation.
	_, db := compileLib(t, "")
	b := siloon.Generate(db, siloon.Options{})
	if b.Lookup("new__Pair_double") == nil {
		t.Error("Pair<double> should be wrapped (explicitly instantiated)")
	}
	if b.Lookup("new__Pair_int") != nil {
		t.Error("Pair<int> must not be wrapped (never instantiated)")
	}
}
