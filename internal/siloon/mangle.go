// Package siloon is the SILOON (Scripting Interface Languages for
// Object-Oriented Numerics) analog of the paper's §4.2: it uses PDT to
// parse C++ class libraries, extracts the interfaces of functions and
// class methods from the PDB, and generates bridging code that links
// scripting-language (slang) code with the library.
//
// The generated code has the paper's two layers: language-specific
// wrapper functions written in the scripting language, which call
// language-independent bridging functions; the bridge registers
// user-designated library routines with SILOON's routine-management
// structures and processes calls from the script.
//
// Templates are treated the same as other entities except that
// non-alphanumeric characters in their names are mangled so they can
// be accessed from the scripting language — only template
// instantiations present in the parsed code are available, exactly as
// the paper describes.
package siloon

import "strings"

// Mangle transforms a C++ entity name into an identifier usable from
// scripting languages: non-alphanumeric characters are transformed to
// encode type and qualifier information ("Stack<int>" → "Stack_int",
// "vector<Stack<double>>" → "vector_Stack_double").
func Mangle(name string) string {
	var sb strings.Builder
	lastUnderscore := false
	put := func(s string) {
		if s == "_" {
			if lastUnderscore || sb.Len() == 0 {
				return
			}
			lastUnderscore = true
			sb.WriteByte('_')
			return
		}
		lastUnderscore = false
		sb.WriteString(s)
	}
	i := 0
	for i < len(name) {
		c := name[i]
		switch {
		case c == ':' && i+1 < len(name) && name[i+1] == ':':
			put("_")
			i += 2
			continue
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			put(string(c))
		case c == '<', c == ',':
			put("_")
		case c == '>':
			// closing bracket adds nothing; the opening separated already
		case c == ' ':
			// drop
		case c == '*':
			put("_")
			put("ptr")
		case c == '&':
			put("_")
			put("ref")
		case c == '~':
			put("_")
			put("dtor")
			put("_")
		case c == '(' || c == ')':
			// operator() spelled out by operator table below
		default:
			put("_")
		}
		i++
	}
	out := strings.TrimRight(sb.String(), "_")
	return out
}

// operatorNames maps operator spellings to mangled member names.
var operatorNames = map[string]string{
	"operator+": "op_add", "operator-": "op_sub", "operator*": "op_mul",
	"operator/": "op_div", "operator%": "op_mod",
	"operator==": "op_eq", "operator!=": "op_ne",
	"operator<": "op_lt", "operator>": "op_gt",
	"operator<=": "op_le", "operator>=": "op_ge",
	"operator[]": "op_index", "operator()": "op_call",
	"operator=": "op_assign", "operator+=": "op_add_assign",
	"operator-=": "op_sub_assign", "operator*=": "op_mul_assign",
	"operator/=": "op_div_assign", "operator<<": "op_shl",
	"operator>>": "op_shr", "operator++": "op_inc", "operator--": "op_dec",
	"operator!": "op_not",
}

// MangleRoutine mangles a routine name, handling operators.
func MangleRoutine(name string) string {
	if m, ok := operatorNames[name]; ok {
		return m
	}
	if strings.HasPrefix(name, "operator") {
		return "op" + Mangle(name[len("operator"):])
	}
	return Mangle(name)
}
