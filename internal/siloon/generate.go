package siloon

import (
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
)

// BindingKind classifies one bridge entry point.
type BindingKind string

// Binding kinds.
const (
	KindCtor   BindingKind = "ctor"
	KindDtor   BindingKind = "dtor"
	KindMethod BindingKind = "method"
	KindStatic BindingKind = "static"
	KindFree   BindingKind = "free"
)

// Binding is one routine exposed to the scripting language.
type Binding struct {
	// Mangled is the bridge entry name registered with the routine
	// manager.
	Mangled string
	Kind    BindingKind
	// Class is the (full) class name for member bindings.
	Class string
	// Routine is the routine's C++ name.
	Routine string
	// Params is the parameter count (excluding the receiver).
	Params []string
}

// Bindings is the generator output: the binding table, the slang
// wrapper module, and the C++ registration glue.
type Bindings struct {
	Items []Binding
	// WrapperScript is the scripting-language wrapper module (the
	// "natural and convenient interface").
	WrapperScript string
	// GlueSource is the C++ bridging/registration code, compiled into
	// the SILOON library.
	GlueSource string

	byMangled map[string]*Binding
}

// Lookup finds a binding by mangled name.
func (b *Bindings) Lookup(mangled string) *Binding {
	if b.byMangled == nil {
		b.byMangled = map[string]*Binding{}
		for i := range b.Items {
			b.byMangled[b.Items[i].Mangled] = &b.Items[i]
		}
	}
	return b.byMangled[mangled]
}

// Options select what to wrap.
type Options struct {
	// Classes restricts wrapping to the named classes (full names);
	// empty wraps every complete, non-system class.
	Classes []string
	// IncludeFree wraps free functions too.
	IncludeFree bool
}

// Generate builds the binding set for a program database — the paper's
// "generation of glue and skeleton code required in providing
// scripting language access to scientific libraries".
func Generate(db *ductape.PDB, opts Options) *Bindings {
	b := &Bindings{}
	var script strings.Builder
	var glue strings.Builder

	script.WriteString("# SILOON-generated slang wrapper module.\n")
	script.WriteString("# Wrapper functions call the language-independent bridge (ccall).\n\n")
	glue.WriteString("// SILOON-generated bridging code.\n#include <siloon.h>\n\nvoid __siloon_init() {\n")

	want := map[string]bool{}
	for _, c := range opts.Classes {
		want[c] = true
	}

	token := 0
	addItem := func(item Binding) {
		token++
		b.Items = append(b.Items, item)
		fmt.Fprintf(&glue, "    __pdt_siloon_register(%q, %d);\n", item.Mangled, token)
	}

	for _, cls := range db.Classes() {
		if len(want) > 0 && !want[cls.FullName()] && !want[cls.Name()] {
			continue
		}
		if len(want) == 0 {
			loc := cls.Location()
			if loc.File == nil || loc.File.System() {
				continue
			}
		}
		clsMangled := Mangle(cls.FullName())

		// Constructor wrapper (_new): uses the richest public ctor.
		var ctor *ductape.Routine
		hasDtor := false
		for _, m := range cls.Functions() {
			switch m.Kind() {
			case "ctor":
				if m.Access() == "pub" && (ctor == nil || len(sigParams(m)) > len(sigParams(ctor))) {
					ctor = m
				}
			case "dtor":
				hasDtor = true
			}
		}
		ctorParams := []string{}
		if ctor != nil {
			ctorParams = sigParams(ctor)
		}
		addItem(Binding{Mangled: "new__" + clsMangled, Kind: KindCtor,
			Class: cls.FullName(), Routine: cls.Name(), Params: ctorParams})
		fmt.Fprintf(&script, "def %s_new(%s) { return ccall(\"new__%s\"%s); }\n",
			clsMangled, strings.Join(ctorParams, ", "), clsMangled, argPass(ctorParams))

		_ = hasDtor
		addItem(Binding{Mangled: "delete__" + clsMangled, Kind: KindDtor,
			Class: cls.FullName(), Routine: "~" + cls.Name()})
		fmt.Fprintf(&script, "def %s_delete(self) { return ccall(\"delete__%s\", self); }\n",
			clsMangled, clsMangled)

		for _, m := range cls.Functions() {
			if m.Access() != "pub" || m.Kind() == "ctor" || m.Kind() == "dtor" {
				continue
			}
			mName := MangleRoutine(m.Name())
			mangled := clsMangled + "__" + mName
			params := sigParams(m)
			kind := KindMethod
			if m.IsStatic() {
				kind = KindStatic
			}
			addItem(Binding{Mangled: mangled, Kind: kind,
				Class: cls.FullName(), Routine: m.Name(), Params: params})
			if kind == KindStatic {
				fmt.Fprintf(&script, "def %s_%s(%s) { return ccall(%q%s); }\n",
					clsMangled, mName, strings.Join(params, ", "), mangled, argPass(params))
			} else {
				all := append([]string{"self"}, params...)
				fmt.Fprintf(&script, "def %s_%s(%s) { return ccall(%q%s); }\n",
					clsMangled, mName, strings.Join(all, ", "), mangled, argPass(all))
			}
		}
		script.WriteString("\n")
	}

	if opts.IncludeFree {
		for _, r := range db.Routines() {
			if r.ParentClass() != nil || r.Kind() != "fun" || r.IsInstantiation() {
				continue
			}
			loc := r.Location()
			if loc.File == nil || loc.File.System() {
				continue
			}
			if r.Name() == "main" || strings.HasPrefix(r.Name(), "__") {
				continue
			}
			mangled := "fn__" + MangleRoutine(fullRoutineName(r))
			params := sigParams(r)
			addItem(Binding{Mangled: mangled, Kind: KindFree,
				Routine: fullRoutineName(r), Params: params})
			fmt.Fprintf(&script, "def %s(%s) { return ccall(%q%s); }\n",
				MangleRoutine(fullRoutineName(r)), strings.Join(params, ", "), mangled, argPass(params))
		}
	}

	glue.WriteString("}\n")
	b.WrapperScript = script.String()
	b.GlueSource = glue.String()
	sortBindings(b.Items)
	return b
}

func sortBindings(items []Binding) {
	sort.SliceStable(items, func(i, j int) bool { return items[i].Mangled < items[j].Mangled })
}

// fullRoutineName returns the namespace-qualified routine name.
func fullRoutineName(r *ductape.Routine) string {
	full := r.FullName()
	if i := strings.IndexByte(full, '('); i >= 0 {
		full = full[:i]
	}
	return full
}

// sigParams produces wrapper parameter names (p0, p1, ...) from the
// routine's signature.
func sigParams(r *ductape.Routine) []string {
	sig := r.Signature()
	if sig == nil {
		return nil
	}
	n := len(sig.ArgumentTypes())
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("p%d", i)
	}
	return out
}

func argPass(params []string) string {
	if len(params) == 0 {
		return ""
	}
	return ", " + strings.Join(params, ", ")
}
