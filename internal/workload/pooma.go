// Package workload provides the C++ programs used by the examples,
// integration tests, and the benchmark harness: a mini POOMA-like
// templated array framework with a Krylov (conjugate gradient) solver
// — the paper's Figure 7 workload — plus synthetic translation-unit
// generators for the performance sweeps.
package workload

// PoomaHeader is a small templated array framework in the spirit of
// POOMA (Parallel Object-Oriented Methods and Applications): templated
// vectors with overloaded operators and free kernel templates. It uses
// templates "extensively to provide array-related algorithms and
// manage allocation of system and network resources" (§4.1), scaled to
// the PDT subset.
const PoomaHeader = `#ifndef POOMA_MINI_H
#define POOMA_MINI_H
#include <cmath>

// A templated field vector with heap storage.
template <class T>
class Vector {
public:
    explicit Vector(int n) : n_(n), data_(new T[n]) {
        for (int i = 0; i < n_; i++)
            data_[i] = 0;
    }
    Vector(const Vector & o) : n_(o.n_), data_(new T[o.n_]) {
        for (int i = 0; i < n_; i++)
            data_[i] = o.data_[i];
    }
    ~Vector() { delete[] data_; }
    Vector & operator=(const Vector & o) {
        if (this != &o) {
            delete[] data_;
            n_ = o.n_;
            data_ = new T[n_];
            for (int i = 0; i < n_; i++)
                data_[i] = o.data_[i];
        }
        return *this;
    }
    int size() const { return n_; }
    T & operator[](int i) { return data_[i]; }
    T get(int i) const { return data_[i]; }
    void set(int i, const T & v) { data_[i] = v; }
    void fill(const T & v) {
        for (int i = 0; i < n_; i++)
            data_[i] = v;
    }
private:
    int n_;
    T *data_;
};

// dot product kernel.
template <class T>
T dot(const Vector<T> & a, const Vector<T> & b) {
    T s = 0;
    for (int i = 0; i < a.size(); i++)
        s += a.get(i) * b.get(i);
    return s;
}

// y += alpha * x
template <class T>
void axpy(T alpha, const Vector<T> & x, Vector<T> & y) {
    for (int i = 0; i < y.size(); i++)
        y.set(i, y.get(i) + alpha * x.get(i));
}

// p = r + beta * p
template <class T>
void updateDirection(const Vector<T> & r, T beta, Vector<T> & p) {
    for (int i = 0; i < p.size(); i++)
        p.set(i, r.get(i) + beta * p.get(i));
}

// y = A x for the 1-D Laplacian stencil A = tridiag(-1, 2, -1).
template <class T>
void applyLaplacian(const Vector<T> & x, Vector<T> & y) {
    int n = x.size();
    for (int i = 0; i < n; i++) {
        T v = 2 * x.get(i);
        if (i > 0)
            v -= x.get(i - 1);
        if (i < n - 1)
            v -= x.get(i + 1);
        y.set(i, v);
    }
}

// Euclidean norm.
template <class T>
T norm2(const Vector<T> & v) {
    return sqrt(dot(v, v));
}
#endif
`

// KrylovSolver is the conjugate-gradient Krylov solver over the mini
// POOMA framework — the routines whose profile the paper's Figure 7
// displays.
const KrylovSolver = `#ifndef KRYLOV_H
#define KRYLOV_H
#include "pooma.h"

// Conjugate gradient on the 1-D Laplacian; returns iteration count.
template <class T>
int conjugateGradient(const Vector<T> & b, Vector<T> & x, int maxIter, T tol) {
    int n = b.size();
    Vector<T> r(n);
    Vector<T> p(n);
    Vector<T> Ap(n);
    applyLaplacian(x, Ap);
    for (int i = 0; i < n; i++)
        r.set(i, b.get(i) - Ap.get(i));
    for (int i = 0; i < n; i++)
        p.set(i, r.get(i));
    T rr = dot(r, r);
    int iter = 0;
    while (iter < maxIter && rr > tol) {
        applyLaplacian(p, Ap);
        T alpha = rr / dot(p, Ap);
        axpy(alpha, p, x);
        axpy(-alpha, Ap, r);
        T rrNew = dot(r, r);
        T beta = rrNew / rr;
        updateDirection(r, beta, p);
        rr = rrNew;
        iter++;
    }
    return iter;
}
#endif
`

// KrylovMain drives the solver on an n-point grid and prints the
// result (deterministic output for golden tests).
const KrylovMain = `#include "krylov.h"
#include <iostream>

int main() {
    const int n = 32;
    Vector<double> b(n);
    Vector<double> x(n);
    b.fill(1.0);
    int iters = conjugateGradient(b, x, 200, 1e-10);
    Vector<double> check(n);
    applyLaplacian(x, check);
    double residual = 0;
    for (int i = 0; i < n; i++) {
        double d = check.get(i) - b.get(i);
        residual += d * d;
    }
    cout << "iterations " << iters << endl;
    cout << "converged " << (residual < 1e-6) << endl;
    return 0;
}
`

// KrylovFiles bundles the Krylov workload as a file map for the
// compilation pipelines.
func KrylovFiles() map[string]string {
	return map[string]string{
		"pooma.h":    PoomaHeader,
		"krylov.h":   KrylovSolver,
		"krylov.cpp": KrylovMain,
	}
}

// StackFigure1 is the paper's Figure 1 program, assembled the way the
// paper's PDB excerpt shows (header including the implementation).
const StackFigure1Header = `#ifndef STACK_AR_H
#define STACK_AR_H
#include <vector>
#include "dsexceptions.h"

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    bool isFull() const;
    const Object & top() const;
    void makeEmpty();
    void pop();
    void push(const Object & x);
    Object topAndPop();
private:
    vector<Object> theArray;
    int topOfStack;
};
#include "StackAr.cpp"
#endif
`

// StackFigure1Impl is the member-template implementation file.
const StackFigure1Impl = `template <class Object>
Stack<Object>::Stack(int capacity) : theArray(capacity), topOfStack(-1) { }

template <class Object>
bool Stack<Object>::isEmpty() const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == theArray.size() - 1;
}

template <class Object>
const Object & Stack<Object>::top() const {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack);
}

template <class Object>
void Stack<Object>::makeEmpty() {
    topOfStack = -1;
}

template <class Object>
void Stack<Object>::pop() {
    if (isEmpty())
        throw Underflow();
    topOfStack--;
}

template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}

template <class Object>
Object Stack<Object>::topAndPop() {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack--);
}
`

// StackFigure1Exceptions declares the exception classes.
const StackFigure1Exceptions = `#ifndef DSEXCEPTIONS_H
#define DSEXCEPTIONS_H
class Overflow { };
class Underflow { };
#endif
`

// StackFigure1Main is Figure 1's driver.
const StackFigure1Main = `#include "StackAr.h"
#include <iostream>

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        cout << s.topAndPop() << endl;
    return 0;
}
`

// StackFiles bundles Figure 1 as a file map.
func StackFiles() map[string]string {
	return map[string]string{
		"StackAr.h":       StackFigure1Header,
		"StackAr.cpp":     StackFigure1Impl,
		"dsexceptions.h":  StackFigure1Exceptions,
		"TestStackAr.cpp": StackFigure1Main,
	}
}
