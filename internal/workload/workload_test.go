package workload_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/interp"
	"pdt/internal/workload"
)

func compileAndRun(t *testing.T, files map[string]string, mainFile string) (int, string) {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, mainFile, files[mainFile], opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	var out strings.Builder
	in := interp.New(res.Unit, interp.Options{Out: &out})
	code, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code, out.String()
}

// TestKrylovConverges runs the Figure 7 workload end-to-end: the CG
// solver must converge on the 1-D Laplacian.
func TestKrylovConverges(t *testing.T) {
	code, out := compileAndRun(t, workload.KrylovFiles(), "krylov.cpp")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "converged 1") {
		t.Errorf("solver did not converge:\n%s", out)
	}
	// CG on an n-point tridiagonal system converges in at most n
	// iterations (here n=32; exact-arithmetic CG would need ~n/2).
	if !strings.Contains(out, "iterations ") {
		t.Errorf("missing iteration count:\n%s", out)
	}
	var iters int
	if _, err := scanInt(out, "iterations ", &iters); err != nil {
		t.Fatalf("parse: %v (output %q)", err, out)
	}
	if iters < 2 || iters > 32 {
		t.Errorf("iterations = %d, expected 2..32", iters)
	}
}

func scanInt(s, prefix string, out *int) (int, error) {
	i := strings.Index(s, prefix)
	if i < 0 {
		return 0, errNotFound
	}
	n := 0
	j := i + len(prefix)
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		n = n*10 + int(s[j]-'0')
		j++
	}
	*out = n
	return n, nil
}

var errNotFound = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "prefix not found" }

// TestStackFigure1Files runs the paper's program from its 4-file
// layout (so#66/so#72/so#73/so#75).
func TestStackFigure1Files(t *testing.T) {
	code, out := compileAndRun(t, workload.StackFiles(), "TestStackAr.cpp")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out != "9\n8\n7\n6\n5\n4\n3\n2\n1\n0\n" {
		t.Errorf("output = %q", out)
	}
}

func TestGenClassesRuns(t *testing.T) {
	src := workload.GenClasses(5, 3)
	code, _ := compileAndRun(t, map[string]string{"gen.cpp": src}, "gen.cpp")
	// C4.mj(j) = j + sum over chain: deterministic; just check it runs
	// and produces a positive sum.
	if code <= 0 {
		t.Errorf("code = %d", code)
	}
}

func TestGenTemplateFanoutRuns(t *testing.T) {
	src := workload.GenTemplateFanout(8, 4, 2)
	code, _ := compileAndRun(t, map[string]string{"gen.cpp": src}, "gen.cpp")
	if code < 0 {
		t.Errorf("code = %d", code)
	}
}

func TestGenDistinctInstantiationsRuns(t *testing.T) {
	src := workload.GenDistinctInstantiations(6)
	code, _ := compileAndRun(t, map[string]string{"gen.cpp": src}, "gen.cpp")
	if code != 1+2+3+4+5+6 {
		t.Errorf("code = %d, want 21", code)
	}
}

func TestGenCallChainRuns(t *testing.T) {
	src := workload.GenCallChain(3, 2)
	code, _ := compileAndRun(t, map[string]string{"gen.cpp": src}, "gen.cpp")
	if code <= 0 {
		t.Errorf("code = %d", code)
	}
}

func TestGenSharedHeaderUnitsCompile(t *testing.T) {
	hdr, units := workload.GenSharedHeaderUnits(3, 2, 2)
	for u, unit := range units {
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		fs.AddVirtualFile("shared.h", hdr)
		res := core.CompileSource(fs, "unit.cpp", unit, opts)
		for _, d := range res.Diagnostics {
			t.Fatalf("unit %d diagnostic: %v", u, d)
		}
	}
}

func TestGenManyTemplatesRuns(t *testing.T) {
	src := workload.GenManyTemplates(8)
	code, _ := compileAndRun(t, map[string]string{"gen.cpp": src}, "gen.cpp")
	if code != 0+1+2+3+4+5+6+7 {
		t.Errorf("code = %d, want 28", code)
	}
}

func TestGenLayeredLibRuns(t *testing.T) {
	files, main := workload.GenLayeredLib(4, 2, 3)
	if len(files) != 5 {
		t.Fatalf("got %d files, want 4 layers + app", len(files))
	}
	// Every layer except the bottom includes the one below it.
	if !strings.Contains(files["layer3.h"], `#include "layer2.h"`) ||
		strings.Contains(files["layer0.h"], "#include") {
		t.Error("layer include chain malformed")
	}
	// The top-layer overrides shadow the lower layers, so main sums
	// op_m(m) = m + (depth-1) + m over width copies.
	want := 0
	for w := 0; w < 2; w++ {
		for m := 0; m < 3; m++ {
			want += m + 3 + m
		}
	}
	code, _ := compileAndRun(t, files, main)
	if code != want {
		t.Errorf("exit code = %d, want %d", code, want)
	}
}
