package workload_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pdt/internal/pdb"
	"pdt/internal/pdbio"
	"pdt/internal/workload"
)

// TestPDBUnitParses: every generated unit must be a valid PDB with the
// promised item counts (headers + unit file + shared routines + local
// routines).
func TestPDBUnitParses(t *testing.T) {
	text := workload.PDBUnit(7, 3, 5)
	db, err := pdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("generated unit does not parse: %v\n%s", err, text)
	}
	if got, want := len(db.Files), 4; got != want {
		t.Errorf("source files = %d, want %d", got, want)
	}
	if got, want := len(db.Routines), 8; got != want {
		t.Errorf("routines = %d, want %d", got, want)
	}
	if got, want := len(db.Files[3].Includes), 3; got != want {
		t.Errorf("unit file includes = %d, want %d", got, want)
	}
}

// TestGenPDBCorpusMergeDedup: merging an n-unit corpus keeps exactly
// one copy of every shared item and all n copies of the local ones —
// the predictable-count contract the monorepo-scale benchmarks rely
// on.
func TestGenPDBCorpusMergeDedup(t *testing.T) {
	const n, shared, local = 40, 2, 3
	paths, err := workload.GenPDBCorpus(t.TempDir(), n, shared, local)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != n {
		t.Fatalf("%d paths, want %d", len(paths), n)
	}
	var buf bytes.Buffer
	if err := pdbio.MergeFiles(context.Background(), &buf, paths); err != nil {
		t.Fatal(err)
	}
	merged, err := pdb.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Files: `shared` headers once + n unit files.
	if got, want := len(merged.Files), shared+n; got != want {
		t.Errorf("merged source files = %d, want %d", got, want)
	}
	// Routines: `shared` dedup'd + n*local unit-locals.
	if got, want := len(merged.Routines), shared+n*local; got != want {
		t.Errorf("merged routines = %d, want %d", got, want)
	}
}
