package workload

import (
	"fmt"
	"strings"
)

// GenClasses synthesizes a translation unit with n classes, each with
// m methods; method j of class i calls method j of class i-1, giving a
// known class count and call-graph shape for frontend benchmarks (B1).
func GenClasses(n, m int) string {
	var sb strings.Builder
	sb.WriteString("// synthetic translation unit\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "class C%d {\npublic:\n", i)
		fmt.Fprintf(&sb, "    C%d() : state(0) { }\n", i)
		for j := 0; j < m; j++ {
			if i == 0 {
				fmt.Fprintf(&sb, "    int m%d(int x) { return state + x + %d; }\n", j, j)
			} else {
				fmt.Fprintf(&sb, "    int m%d(int x) { C%d prev; return prev.m%d(x) + %d; }\n",
					j, i-1, j, j)
			}
		}
		sb.WriteString("private:\n    int state;\n};\n\n")
	}
	fmt.Fprintf(&sb, "int main() {\n    C%d top;\n    int s = 0;\n", n-1)
	for j := 0; j < m; j++ {
		fmt.Fprintf(&sb, "    s += top.m%d(%d);\n", j, j)
	}
	sb.WriteString("    return s;\n}\n")
	return sb.String()
}

// GenTemplateFanout synthesizes a class template with many members and
// k distinct instantiations, each using `used` of the members — the
// workload for the B2 used-vs-eager instantiation benchmark.
func GenTemplateFanout(members, k, used int) string {
	var sb strings.Builder
	sb.WriteString("template <class T>\nclass Fan {\npublic:\n")
	for j := 0; j < members; j++ {
		fmt.Fprintf(&sb, "    T f%d(T x) { return x + %d; }\n", j, j)
	}
	sb.WriteString("};\n\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "typedef int Alias%d;\n", i)
	}
	sb.WriteString("int main() {\n    int s = 0;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "    { Fan<Alias%d> fan%d;\n", i, i)
		for j := 0; j < used && j < members; j++ {
			fmt.Fprintf(&sb, "      s += fan%d.f%d(%d);\n", i, j, i)
		}
		sb.WriteString("    }\n")
	}
	sb.WriteString("    return s;\n}\n")
	return sb.String()
}

// GenDistinctInstantiations synthesizes k genuinely distinct
// instantiations of one template (distinct non-type arguments), for
// merge/dedup benchmarks.
func GenDistinctInstantiations(k int) string {
	var sb strings.Builder
	sb.WriteString("template <class T, int N>\nclass Slot {\npublic:\n")
	sb.WriteString("    int capacity() const { return N; }\n")
	sb.WriteString("    T value;\n};\n\nint main() {\n    int s = 0;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "    { Slot<int, %d> slot%d; s += slot%d.capacity(); }\n", i+1, i, i)
	}
	sb.WriteString("    return s;\n}\n")
	return sb.String()
}

// GenManyTemplates synthesizes k distinct class templates, each
// instantiated once — the workload that stresses the IL Analyzer's
// template-origin location scan (O(templates) per instantiation)
// against the direct-ID mode (O(1)).
func GenManyTemplates(k int) string {
	var sb strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "template <class T> class T%d { public: T v; int tag() { return %d; } };\n", i, i)
	}
	sb.WriteString("int main() {\n    int s = 0;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "    { T%d<int> t%d; s += t%d.tag(); }\n", i, i, i)
	}
	sb.WriteString("    return s;\n}\n")
	return sb.String()
}

// GenCallChain synthesizes a call chain of the given depth with the
// given fanout at each level, for call-graph traversal benchmarks (B5).
func GenCallChain(depth, fanout int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int leaf(int x) { return x + 1; }\n")
	for d := 1; d <= depth; d++ {
		fmt.Fprintf(&sb, "int level%d(int x) {\n    int s = x;\n", d)
		for f := 0; f < fanout; f++ {
			if d == 1 {
				fmt.Fprintf(&sb, "    s += leaf(s);\n")
			} else {
				fmt.Fprintf(&sb, "    s += level%d(s);\n", d-1)
			}
		}
		sb.WriteString("    return s;\n}\n")
	}
	fmt.Fprintf(&sb, "int main() { return level%d(1); }\n", depth)
	return sb.String()
}

// GenLayeredLib synthesizes a layered header library: depth headers
// layer0.h .. layer<depth-1>.h form a linear include chain, and each
// layer defines width classes inheriting from the same-index class one
// layer down, overriding its virtual methods. The returned app
// translation unit includes only the top layer and exercises the top
// classes from main. The shape — deep include closures and deep
// virtual hierarchies — is the expensive case for include-closure and
// override analysis, and mirrors layered template libraries.
// It returns the file set (including "app.cpp") and the main file
// name.
func GenLayeredLib(depth, width, methods int) (map[string]string, string) {
	files := make(map[string]string, depth+1)
	for d := 0; d < depth; d++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "#ifndef LAYER%d_H\n#define LAYER%d_H\n", d, d)
		if d > 0 {
			fmt.Fprintf(&sb, "#include \"layer%d.h\"\n", d-1)
		}
		for w := 0; w < width; w++ {
			if d == 0 {
				fmt.Fprintf(&sb, "class L0C%d {\npublic:\n    virtual ~L0C%d() { }\n", w, w)
			} else {
				fmt.Fprintf(&sb, "class L%dC%d : public L%dC%d {\npublic:\n", d, w, d-1, w)
			}
			for m := 0; m < methods; m++ {
				fmt.Fprintf(&sb, "    virtual int op%d(int x) { return x + %d; }\n", m, d+m)
			}
			sb.WriteString("};\n")
		}
		sb.WriteString("#endif\n")
		files[fmt.Sprintf("layer%d.h", d)] = sb.String()
	}
	var app strings.Builder
	fmt.Fprintf(&app, "#include \"layer%d.h\"\n", depth-1)
	app.WriteString("int main() {\n    int s = 0;\n")
	for w := 0; w < width; w++ {
		fmt.Fprintf(&app, "    { L%dC%d o;", depth-1, w)
		for m := 0; m < methods; m++ {
			fmt.Fprintf(&app, " s += o.op%d(%d);", m, m)
		}
		app.WriteString(" }\n")
	}
	app.WriteString("    return s;\n}\n")
	files["app.cpp"] = app.String()
	return files, "app.cpp"
}

// GenSharedHeaderUnits synthesizes m translation units all including
// one header that defines a class template, each unit instantiating
// the same and some distinct instantiations — the pdbmerge workload
// (B4). It returns (header, units).
func GenSharedHeaderUnits(m, sharedInsts, uniqueInsts int) (string, []string) {
	var hdr strings.Builder
	hdr.WriteString("#ifndef SHARED_H\n#define SHARED_H\n")
	hdr.WriteString("template <class T, int N>\nclass Shared {\npublic:\n")
	hdr.WriteString("    int cap() const { return N; }\n    T v;\n};\n")
	hdr.WriteString("#endif\n")

	units := make([]string, 0, m)
	for u := 0; u < m; u++ {
		var sb strings.Builder
		sb.WriteString("#include \"shared.h\"\n")
		fmt.Fprintf(&sb, "int unit%d() {\n    int s = 0;\n", u)
		for i := 0; i < sharedInsts; i++ {
			fmt.Fprintf(&sb, "    { Shared<int, %d> a; s += a.cap(); }\n", i+1)
		}
		for i := 0; i < uniqueInsts; i++ {
			fmt.Fprintf(&sb, "    { Shared<double, %d> b; s += b.cap(); }\n", 1000+u*uniqueInsts+i)
		}
		sb.WriteString("    return s;\n}\n")
		units = append(units, sb.String())
	}
	return hdr.String(), units
}

// GenMergeUnits synthesizes m translation units for the pdbio merge
// benchmarks: all units share a header of template instantiations
// (collapsed by the merge) and each unit additionally defines
// localClasses unit-local classes with distinct names (so the merged
// database keeps growing with m and every per-unit PDB is sizable).
// It returns (header, units); the header file is named "shared.h".
func GenMergeUnits(m, sharedInsts, localClasses int) (string, []string) {
	hdr, units := GenSharedHeaderUnits(m, sharedInsts, 2)
	for u := range units {
		var sb strings.Builder
		sb.WriteString(units[u])
		for i := 0; i < localClasses; i++ {
			fmt.Fprintf(&sb, "class U%dL%d {\npublic:\n", u, i)
			fmt.Fprintf(&sb, "    U%dL%d() : n(%d) { }\n", u, i, i)
			sb.WriteString("    int get() const { return n; }\n")
			sb.WriteString("    int twice() const { return n * 2; }\n")
			sb.WriteString("private:\n    int n;\n};\n")
		}
		fmt.Fprintf(&sb, "int local%d() {\n    int s = 0;\n", u)
		for i := 0; i < localClasses; i++ {
			fmt.Fprintf(&sb, "    { U%dL%d x; s += x.get() + x.twice(); }\n", u, i)
		}
		sb.WriteString("    return s;\n}\n")
		units[u] = sb.String()
	}
	return hdr, units
}
