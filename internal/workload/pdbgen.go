package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// PDBUnit synthesizes the text of one per-compilation-unit program
// database directly — no C++ frontend in the loop — so corpora of tens
// of thousands of units materialize in milliseconds. Each unit has
// sharedHeaders header files carrying one shared routine apiece
// (identical across every unit, so a merge must deduplicate them) plus
// localRoutines unit-local routines (unique to the unit, so a merge
// must keep every one). That mix makes the merged item count exactly
// predictable: shared items appear once, local items n times.
func PDBUnit(i, sharedHeaders, localRoutines int) string {
	var sb strings.Builder
	sb.WriteString("<PDB 1.0>\n")
	id := 1
	for h := 0; h < sharedHeaders; h++ {
		fmt.Fprintf(&sb, "\nso#%d shared%d.h\n", id, h)
		id++
	}
	unitFile := id
	fmt.Fprintf(&sb, "\nso#%d unit%05d.cpp\n", id, i)
	for h := 0; h < sharedHeaders; h++ {
		fmt.Fprintf(&sb, "sinc %d\n", h+1)
	}
	id++
	// Shared routines live in the shared headers: every unit carries an
	// identical copy, the merge keeps one.
	for h := 0; h < sharedHeaders; h++ {
		fmt.Fprintf(&sb, "\nro#%d shared_f%d\nrloc so#%d 1 1\nracs NA\nrkind fun\nrlink C++\n", id, h, h+1)
		id++
	}
	// Local routines live in the unit file: unique names, all survive
	// the merge.
	for r := 0; r < localRoutines; r++ {
		fmt.Fprintf(&sb, "\nro#%d u%05d_f%d\nrloc so#%d %d 1\nracs NA\nrkind fun\nrlink C++\n", id, i, r, unitFile, r+1)
		id++
	}
	return sb.String()
}

// GenPDBCorpus writes an n-unit synthetic corpus into dir (created if
// needed), returning the paths in unit order. This is the
// monorepo-scale merge workload: 10k+ real files on disk, each a
// valid PDB the full load/merge pipeline ingests, generated directly
// so benchmark setup is not dominated by the C++ frontend.
func GenPDBCorpus(dir string, n, sharedHeaders, localRoutines int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("unit%05d.pdb", i))
		if err := os.WriteFile(paths[i], []byte(PDBUnit(i, sharedHeaders, localRoutines)), 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
