package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdb"
)

// odrFixture builds a database with many duplicate-definition groups —
// the shape that exercises duplicateClasses' group iteration, which
// must not depend on Go's map iteration order.
func odrFixture() *ductape.PDB {
	raw := &pdb.PDB{
		Files: []*pdb.SourceFile{
			{ID: 1, Name: "a.cc"},
			{ID: 2, Name: "b.cc"},
		},
	}
	id := 10
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("Dup%d", i)
		for f := 1; f <= 2; f++ {
			raw.Classes = append(raw.Classes, &pdb.Class{
				ID: id, Name: name,
				Loc: pdb.Loc{File: pdb.Ref{Prefix: "so", ID: f}, Line: i + 1, Col: 1},
			})
			id++
		}
	}
	return ductape.FromRaw(raw)
}

// TestPassOutputsDeterministic pins the per-pass determinism contract
// the incremental driver's cache relies on: a pass run repeatedly over
// one database returns the exact same diagnostics in the exact same
// order, with no dependence on map iteration.
func TestPassOutputsDeterministic(t *testing.T) {
	dbs := map[string]*ductape.PDB{"odr": odrFixture()}
	for name, db := range dbs {
		for _, p := range All() {
			base := p.Run(db)
			for i := 0; i < 20; i++ {
				if got := p.Run(db); !reflect.DeepEqual(got, base) {
					t.Fatalf("%s/%s: run %d diverged:\n%v\nvs\n%v",
						name, p.Name(), i, got, base)
				}
			}
		}
	}
}

func TestDuplicateClassesSortedGroups(t *testing.T) {
	db := odrFixture()
	diags := duplicateClasses(db)
	if len(diags) != 8 {
		t.Fatalf("got %d duplicate groups, want 8", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Message > diags[i].Message {
			t.Errorf("group order not sorted: %q after %q",
				diags[i].Message, diags[i-1].Message)
		}
	}
}
