package analysis

import (
	"fmt"
	"sort"

	"pdt/internal/ductape"
)

// DefaultTemplateBloatThreshold is the instantiation count above which
// a template is reported (pdblint -template-bloat overrides it).
const DefaultTemplateBloatThreshold = 8

// TemplateBloatPass reports templates whose recorded instantiation
// count exceeds a threshold. The paper's "used" instantiation mode
// keeps the database down to the instantiations a program actually
// touches, so a large count here is real fan-out — each entry is
// another copy of the template's code in the final binary, the
// template code bloat §2 sets out to control.
type TemplateBloatPass struct {
	// Threshold is the maximum tolerated instantiation count.
	Threshold int
}

// NewTemplateBloatPass returns the pass at the default threshold.
func NewTemplateBloatPass() Pass {
	return &TemplateBloatPass{Threshold: DefaultTemplateBloatThreshold}
}

// Name implements Pass.
func (*TemplateBloatPass) Name() string { return "template-bloat" }

// Doc implements Pass.
func (p *TemplateBloatPass) Doc() string {
	return fmt.Sprintf("templates instantiated more than %d times (code-bloat fan-out)", p.Threshold)
}

// Run implements Pass.
func (p *TemplateBloatPass) Run(db *ductape.PDB) []Diagnostic {
	var out []Diagnostic
	for _, t := range db.Templates() {
		n := t.InstantiationCount()
		if n <= p.Threshold {
			continue
		}
		diag := Diagnostic{
			Pass:     "template-bloat",
			Severity: Warning,
			Loc:      LocationOf(t.Location()),
			Message: fmt.Sprintf("template '%s' has %d instantiations (threshold %d)",
				t.Name(), n, p.Threshold),
		}
		for _, item := range sortedInstantiations(t) {
			diag.Related = append(diag.Related, Related{
				Message: fmt.Sprintf("instantiated as '%s'", item.Name()),
				Loc:     LocationOf(item.Location()),
			})
		}
		out = append(out, diag)
	}
	Sort(out)
	return out
}

// sortedInstantiations lists a template's instantiations (classes then
// routines) in deterministic name order.
func sortedInstantiations(t *ductape.Template) []ductape.TemplateItem {
	var items []ductape.TemplateItem
	for _, c := range t.InstantiatedClasses() {
		items = append(items, c)
	}
	for _, r := range t.InstantiatedRoutines() {
		items = append(items, r)
	}
	sortTemplateItems(items)
	return items
}

func sortTemplateItems(items []ductape.TemplateItem) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if an, bn := a.Name(), b.Name(); an != bn {
			return an < bn
		}
		if ap, bp := a.Prefix(), b.Prefix(); ap != bp {
			return ap < bp
		}
		return a.ID() < b.ID()
	})
}
