package analysis

import (
	"strings"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdb"
)

func TestRecoveryPass(t *testing.T) {
	raw := &pdb.PDB{
		Files: []*pdb.SourceFile{{ID: 1, Name: "a.cpp"}},
		Recovered: []pdb.Diagnostic{
			{File: "unit.pdb", StartLine: 10, EndLine: 12, Tag: "ro#7",
				Cause:   "line exceeds the 4096-byte limit",
				Skipped: []string{"rlocc so#1 3 4", "junk"}},
			{File: "unit.pdb", StartLine: 30, EndLine: 30,
				Cause: "attribute \"cloc\" outside any item"},
		},
	}
	diags := NewRecoveryPass().Run(ductape.FromRaw(raw))
	if len(diags) != 2 {
		t.Fatalf("diags = %v, want 2", diags)
	}
	d := diags[0]
	if d.Pass != "pdb-recovery" || d.Severity != Warning {
		t.Errorf("diag = %+v, want a pdb-recovery warning", d)
	}
	if d.Loc.File != "unit.pdb" || d.Loc.Line != 10 {
		t.Errorf("loc = %v, want unit.pdb:10", d.Loc)
	}
	if !strings.Contains(d.Message, "item ro#7") || !strings.Contains(d.Message, "2 line(s) dropped") {
		t.Errorf("message = %q, want the tag and drop count named", d.Message)
	}
	if strings.Contains(diags[1].Message, "item ") {
		t.Errorf("tagless diag message = %q, must not invent a tag", diags[1].Message)
	}
}

func TestRecoveryPassSilentOnStrictLoad(t *testing.T) {
	raw := &pdb.PDB{Files: []*pdb.SourceFile{{ID: 1, Name: "a.cpp"}}}
	if diags := NewRecoveryPass().Run(ductape.FromRaw(raw)); len(diags) != 0 {
		t.Errorf("strictly loaded db produced %v", diags)
	}
}
