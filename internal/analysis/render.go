package analysis

import (
	"encoding/json"
	"fmt"
	"io"

	"pdt/internal/schema"
)

// WriteText renders the report in compiler style, one finding per
// line, with related locations as indented notes:
//
//	main.cpp:12:5: warning: routine 'deadHelper(int)' ... [dead-routine]
//	    note: declared here — lint.h:3:1
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s: %s: %s [%s]\n",
			d.Loc, d.Severity, d.Message, d.Pass); err != nil {
			return err
		}
		for _, rel := range d.Related {
			if _, err := fmt.Fprintf(w, "    note: %s — %s\n",
				rel.Message, rel.Loc); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report is the versioned JSON shape of one findings report: the
// shared schema_version stamp and the findings array (empty, never
// null, for a clean run). CLI consumers and pdbd HTTP clients decode
// the same object.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Findings      []Diagnostic `json:"findings"`
}

// WriteJSON renders the report as an indented, versioned JSON object,
// byte-identical across runs for the same database and pass set.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.MarshalIndent(Report{SchemaVersion: schema.Version, Findings: diags}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}
