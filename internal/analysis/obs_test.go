package analysis_test

import (
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/obs"
)

// TestRunRecordsMetrics: the driver must emit an "analysis" stage span
// with one child per pass carrying that pass's finding count, a
// findings counter, and (in parallel mode) worker busy time — and
// instrumentation must not change the diagnostics.
func TestRunRecordsMetrics(t *testing.T) {
	db := lintFixture(t)
	passes := analysis.All()
	plain := analysis.Run(db, passes, analysis.Options{})

	for _, workers := range []int{1, 4} {
		m := obs.New("pdblint")
		diags := analysis.Run(db, passes, analysis.Options{Workers: workers, Metrics: m})
		if len(diags) != len(plain) {
			t.Fatalf("workers=%d: metrics changed the report: %d vs %d findings",
				workers, len(diags), len(plain))
		}
		snap := m.Snapshot()
		sp := snap.Find("analysis")
		if sp == nil {
			t.Fatalf("workers=%d: no analysis span", workers)
		}
		if sp.Items != int64(len(passes)) || len(sp.Children) != len(passes) {
			t.Errorf("workers=%d: analysis span = %d items %d children, want %d passes",
				workers, sp.Items, len(sp.Children), len(passes))
		}
		var perPass int64
		for _, p := range passes {
			child := snap.Find(p.Name())
			if child == nil {
				t.Errorf("workers=%d: no span for pass %s", workers, p.Name())
				continue
			}
			perPass += child.Items
		}
		if perPass != int64(len(diags)) {
			t.Errorf("workers=%d: per-pass items sum to %d, want %d findings",
				workers, perPass, len(diags))
		}
		if got := snap.Counters["analysis.findings"]; got != int64(len(diags)) {
			t.Errorf("workers=%d: findings counter = %d, want %d", workers, got, len(diags))
		}
		if workers > 1 {
			if len(snap.Pools) != 1 || snap.Pools[0].Name != "analysis" {
				t.Fatalf("pools = %+v, want one analysis pool", snap.Pools)
			}
			var busy int64
			for _, b := range snap.Pools[0].BusyNS {
				busy += b
			}
			if busy <= 0 {
				t.Error("no worker busy time recorded")
			}
		}
	}
}
