package analysis

import (
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
)

// includeCyclePass reports cycles in the source-file inclusion tree
// (§3.3's first global view). Guarded headers make cycles compile, but
// they defeat the tree structure every inclusion-based tool assumes
// and usually indicate an interface split waiting to happen.
type includeCyclePass struct{}

// NewIncludeCyclePass returns the inclusion-graph cycle pass.
func NewIncludeCyclePass() Pass { return includeCyclePass{} }

func (includeCyclePass) Name() string { return "include-cycle" }

func (includeCyclePass) Doc() string {
	return "cycles in the file inclusion graph"
}

func (includeCyclePass) Run(db *ductape.PDB) []Diagnostic {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := map[*ductape.File]int{}
	var stack []*ductape.File
	seenCycles := map[string]bool{}
	var out []Diagnostic

	var dfs func(f *ductape.File)
	dfs = func(f *ductape.File) {
		state[f] = onStack
		stack = append(stack, f)
		for _, inc := range sortedFiles(f.Includes()) {
			switch state[inc] {
			case unvisited:
				dfs(inc)
			case onStack:
				// Extract the cycle inc -> ... -> f -> inc.
				start := 0
				for i, s := range stack {
					if s == inc {
						start = i
						break
					}
				}
				cycle := append([]*ductape.File{}, stack[start:]...)
				reportCycle(&out, seenCycles, cycle)
			}
		}
		stack = stack[:len(stack)-1]
		state[f] = done
	}
	for _, f := range sortedFiles(db.Files()) {
		if state[f] == unvisited {
			dfs(f)
		}
	}
	Sort(out)
	return out
}

// reportCycle emits one diagnostic per distinct cycle, normalized so
// the same cycle found from different entry files is reported once,
// anchored at its lexicographically smallest member.
func reportCycle(out *[]Diagnostic, seen map[string]bool, cycle []*ductape.File) {
	if len(cycle) == 0 {
		return
	}
	smallest := 0
	for i, f := range cycle {
		if f.Name() < cycle[smallest].Name() {
			smallest = i
		}
	}
	rotated := append(append([]*ductape.File{}, cycle[smallest:]...), cycle[:smallest]...)
	names := make([]string, 0, len(rotated)+1)
	for _, f := range rotated {
		names = append(names, f.Name())
	}
	names = append(names, rotated[0].Name())
	key := strings.Join(names, "|")
	if seen[key] {
		return
	}
	seen[key] = true
	*out = append(*out, Diagnostic{
		Pass:     "include-cycle",
		Severity: Warning,
		Loc:      FileLocation(rotated[0]),
		Message:  fmt.Sprintf("include cycle: %s", strings.Join(names, " -> ")),
	})
}

// unusedIncludePass reports #include edges whose target (transitively)
// provides nothing the including file references. References are drawn
// from the cross-reference data the database records: call sites,
// parent classes of out-of-line definitions, base classes, data-member
// and signature class types, and template-origin links. Macro uses and bare
// typedef references are not recorded in the PDB, so a header consumed
// only through those can be a false positive; system headers and
// system includers are never reported.
type unusedIncludePass struct{}

// NewUnusedIncludePass returns the unused-include pass.
func NewUnusedIncludePass() Pass { return unusedIncludePass{} }

func (unusedIncludePass) Name() string { return "unused-include" }

func (unusedIncludePass) Doc() string {
	return "#include edges providing nothing the including file uses"
}

func (unusedIncludePass) Run(db *ductape.PDB) []Diagnostic {
	used := usedFiles(db)
	reach := map[*ductape.File]map[*ductape.File]bool{}
	var closure func(f *ductape.File) map[*ductape.File]bool
	closure = func(f *ductape.File) map[*ductape.File]bool {
		if r, ok := reach[f]; ok {
			return r
		}
		r := map[*ductape.File]bool{f: true}
		reach[f] = r // placed before recursion to cut include cycles
		for _, inc := range f.Includes() {
			for g := range closure(inc) {
				r[g] = true
			}
		}
		return r
	}

	var out []Diagnostic
	for _, f := range sortedFiles(db.Files()) {
		if f.System() {
			continue
		}
		for _, inc := range sortedFiles(f.Includes()) {
			if inc.System() || inc == f {
				continue
			}
			provides := closure(inc)
			usedAny := false
			for g := range used[f] {
				if provides[g] {
					usedAny = true
					break
				}
			}
			if !usedAny {
				out = append(out, Diagnostic{
					Pass:     "unused-include",
					Severity: Warning,
					Loc:      FileLocation(f),
					Message: fmt.Sprintf("'%s' includes '%s' but uses nothing it provides",
						f.Name(), inc.Name()),
				})
			}
		}
	}
	Sort(out)
	return out
}

// usedFiles computes, per file, the set of files whose declarations it
// references.
func usedFiles(db *ductape.PDB) map[*ductape.File]map[*ductape.File]bool {
	used := map[*ductape.File]map[*ductape.File]bool{}
	use := func(from *ductape.File, to ductape.Location) {
		if from == nil || to.File == nil || to.File == from {
			return
		}
		if used[from] == nil {
			used[from] = map[*ductape.File]bool{}
		}
		used[from][to.File] = true
	}
	useType := func(from *ductape.File, t *ductape.Type) {
		// Follow the type structure to any named class it mentions.
		seen := map[*ductape.Type]bool{}
		for t != nil && !seen[t] {
			seen[t] = true
			if c := t.Class(); c != nil {
				use(from, c.Location())
			}
			switch {
			case t.Elem() != nil:
				t = t.Elem()
			case t.BaseType() != nil:
				t = t.BaseType()
			default:
				t = nil
			}
		}
	}

	for _, r := range db.Routines() {
		from := r.Location().File
		for _, call := range r.Callees() {
			callee := call.Call()
			use(from, callee.Location())
			if c := callee.ParentClass(); c != nil {
				use(from, c.Location())
			}
		}
		if c := r.ParentClass(); c != nil {
			use(from, c.Location())
		}
		if te := r.Template(); te != nil {
			use(from, te.Location())
		}
		if sig := r.Signature(); sig != nil {
			useType(from, sig.ReturnType())
			for _, a := range sig.ArgumentTypes() {
				useType(from, a)
			}
		}
	}
	for _, c := range db.Classes() {
		from := c.Location().File
		for _, b := range c.BaseClasses() {
			if b.Class != nil {
				use(from, b.Class.Location())
			}
		}
		for _, m := range c.DataMembers() {
			useType(from, m.Type)
		}
		if te := c.Template(); te != nil {
			use(from, te.Location())
		}
	}
	return used
}

// sortedFiles returns a name-ordered copy, for deterministic walks.
func sortedFiles(files []*ductape.File) []*ductape.File {
	out := append([]*ductape.File{}, files...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
