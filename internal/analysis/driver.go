package analysis

import (
	"runtime"
	"sort"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/obs"
)

// Options configures the pass driver.
type Options struct {
	// Workers is the number of goroutines running passes. Zero (or
	// negative) means GOMAXPROCS; 1 forces serial execution.
	Workers int
	// Metrics, when non-nil, records an "analysis" stage span with one
	// child span per pass (wall time + finding count) and per-worker
	// busy time in the "analysis" pool.
	Metrics *obs.Metrics
}

// Run executes the passes over the database and returns every
// diagnostic in deterministic order (file, line, column, pass name,
// message) regardless of worker count or scheduling. Passes run
// concurrently on a worker pool; each pass is one unit of work.
func Run(db *ductape.PDB, passes []Pass, opts Options) []Diagnostic {
	results := runPasses(db, passes, opts)
	var out []Diagnostic
	for _, rs := range results {
		out = append(out, rs...)
	}
	opts.Metrics.Counter("analysis.findings").Add(int64(len(out)))
	Sort(out)
	return out
}

// runPasses executes the passes on the worker pool and returns the
// per-pass finding lists, indexed like passes. This is the shared
// execution core of Run and RunIncremental.
func runPasses(db *ductape.PDB, passes []Pass, opts Options) [][]Diagnostic {
	sp := opts.Metrics.StartSpan("analysis")
	defer sp.End()
	sp.AddItems(int64(len(passes)))

	// Force the lazily built views before fan-out so the passes only
	// ever read the database.
	db.Macros()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(passes) {
		workers = len(passes)
	}

	results := make([][]Diagnostic, len(passes))
	runPass := func(i int, wrk *obs.Worker) {
		ps := sp.Start(passes[i].Name())
		t0 := wrk.Begin()
		diags := passes[i].Run(db)
		wrk.End(t0, int64(len(diags)), 0)
		ps.AddItems(int64(len(diags)))
		ps.End()
		results[i] = diags
	}
	if workers <= 1 {
		for i := range passes {
			runPass(i, nil)
		}
	} else {
		pool := opts.Metrics.Pool("analysis")
		jobs := make(chan int, len(passes))
		for i := range passes {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(wrk *obs.Worker) {
				defer wg.Done()
				for i := range jobs {
					runPass(i, wrk)
				}
			}(pool.Worker(w))
		}
		wg.Wait()
	}
	return results
}

// Sort orders diagnostics for stable presentation: by file, line,
// column, pass name, then message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Loc.File != b.Loc.File {
			return a.Loc.File < b.Loc.File
		}
		if a.Loc.Line != b.Loc.Line {
			return a.Loc.Line < b.Loc.Line
		}
		if a.Loc.Col != b.Loc.Col {
			return a.Loc.Col < b.Loc.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// MaxSeverity returns the gravest severity present, or (Info, false)
// for an empty report.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return Info, false
	}
	max := Info
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// ExitCode maps a report onto the pdblint process exit code: 0 for a
// clean (or info-only) report, 1 when the gravest finding is a
// warning, 2 when any error is present.
func ExitCode(diags []Diagnostic) int {
	max, any := MaxSeverity(diags)
	if !any {
		return 0
	}
	switch max {
	case Error:
		return 2
	case Warning:
		return 1
	}
	return 0
}
