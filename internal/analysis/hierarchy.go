package analysis

import (
	"fmt"
	"sort"

	"pdt/internal/ductape"
)

// hierarchyCheckPass audits the class hierarchy (§3.3's third global
// view) for two classic polymorphism hazards:
//
//  1. a polymorphic class used as a base whose recorded destructor is
//     not virtual (deleting a derived object through a base pointer is
//     undefined behaviour), and
//  2. a derived class declaring a non-virtual member function whose
//     name matches a virtual function inherited from a base — the
//     declaration hides every base overload instead of overriding
//     (same-arity redeclarations are implicitly virtual in C++ and are
//     therefore not reported; what remains is genuine name hiding).
type hierarchyCheckPass struct{}

// NewHierarchyCheckPass returns the class-hierarchy audit pass.
func NewHierarchyCheckPass() Pass { return hierarchyCheckPass{} }

func (hierarchyCheckPass) Name() string { return "hierarchy-check" }

func (hierarchyCheckPass) Doc() string {
	return "polymorphic bases with non-virtual destructors; non-virtual functions hiding inherited virtuals"
}

func (hierarchyCheckPass) Run(db *ductape.PDB) []Diagnostic {
	var out []Diagnostic
	for _, c := range db.Classes() {
		out = append(out, checkBaseDestructor(c)...)
		out = append(out, checkHiddenVirtuals(c)...)
	}
	Sort(out)
	return out
}

func checkBaseDestructor(c *ductape.Class) []Diagnostic {
	derived := c.DerivedClasses()
	if len(derived) == 0 || !c.IsPolymorphic() {
		return nil
	}
	d := c.Destructor()
	if d == nil || d.IsVirtual() {
		return nil
	}
	diag := Diagnostic{
		Pass:     "hierarchy-check",
		Severity: Warning,
		Loc:      LocationOf(d.Location()),
		Message: fmt.Sprintf("polymorphic class '%s' is used as a base but its destructor is not virtual",
			c.FullName()),
	}
	for _, dc := range sortedClasses(derived) {
		diag.Related = append(diag.Related, Related{
			Message: fmt.Sprintf("derived class '%s'", dc.FullName()),
			Loc:     LocationOf(dc.Location()),
		})
	}
	return []Diagnostic{diag}
}

func checkHiddenVirtuals(c *ductape.Class) []Diagnostic {
	var out []Diagnostic
	reported := map[*ductape.Routine]bool{}
	for _, b := range c.AllBases() {
		for _, g := range b.Functions() {
			if !g.IsVirtual() || g.Kind() == "dtor" {
				continue
			}
			for _, f := range c.Functions() {
				if f.IsVirtual() || f.Kind() == "dtor" || reported[f] ||
					f.Name() != g.Name() {
					continue
				}
				reported[f] = true
				out = append(out, Diagnostic{
					Pass:     "hierarchy-check",
					Severity: Warning,
					Loc:      LocationOf(f.Location()),
					Message: fmt.Sprintf("non-virtual '%s' hides inherited virtual '%s'",
						f.FullName(), g.FullName()),
					Related: []Related{{
						Message: fmt.Sprintf("virtual '%s' declared here", g.FullName()),
						Loc:     LocationOf(g.Location()),
					}},
				})
			}
		}
	}
	return out
}

func sortedClasses(cs []*ductape.Class) []*ductape.Class {
	out := append([]*ductape.Class{}, cs...)
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
