package analysis_test

import (
	"reflect"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/durable"
	"pdt/internal/query"
)

func openJournal(t *testing.T) *durable.Journal {
	t.Helper()
	j, err := durable.OpenJournal(durable.OS, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestIncrementalColdThenWarm(t *testing.T) {
	db := lintFixture(t)
	j := openJournal(t)
	full := analysis.Run(db, analysis.All(), analysis.Options{})

	cold, err := analysis.RunIncremental(db, analysis.All(),
		analysis.IncrementalOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Reused) != 0 || len(cold.Reran) != len(analysis.All()) {
		t.Errorf("cold run: reused=%v reran=%v", cold.Reused, cold.Reran)
	}
	if !reflect.DeepEqual(cold.Diags, full) {
		t.Errorf("cold incremental diverges from full run:\n%v\nvs\n%v", cold.Diags, full)
	}

	warm, err := analysis.RunIncremental(db, analysis.All(),
		analysis.IncrementalOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Reran) != 0 || len(warm.Reused) != len(analysis.All()) {
		t.Errorf("warm run: reused=%v reran=%v", warm.Reused, warm.Reran)
	}
	if !reflect.DeepEqual(warm.Diags, full) {
		t.Errorf("warm incremental diverges from full run:\n%v\nvs\n%v", warm.Diags, full)
	}
}

func TestIncrementalRoutineDiffSkipsFileOnlyPasses(t *testing.T) {
	j := openJournal(t)
	db1 := lintFixture(t)
	if _, err := analysis.RunIncremental(db1, analysis.All(),
		analysis.IncrementalOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}

	// Same file set, one routine body reshaped (its recorded extent
	// changes): the include graph (files section) is untouched, so
	// include-cycle must be reused while the routine-reading passes
	// re-run.
	db2 := buildDB(t, `#include "a.h"
class Shape {
public:
    Shape() { }
    ~Shape() { }
    virtual void scale(double f) { }
};
class Circle : public Shape {
public:
    Circle() { }
    void scale(int a, int b) { }
};
int deadHelper(int x) {
    return x * 2;
}
int main() {
    Circle c;
    c.scale(1, 2);
    Alpha a;
    return probe(a);
}
`, map[string]string{
		"a.h": "#ifndef A_H\n#define A_H\n#include \"b.h\"\nstruct Alpha { int id; };\nint probe(Alpha & a) { a.id = 1; return a.id; }\n#endif\n",
		"b.h": "#ifndef B_H\n#define B_H\n#include \"a.h\"\nstruct Beta { int id; };\n#endif\n",
	})

	res, err := analysis.RunIncremental(db2, analysis.All(),
		analysis.IncrementalOptions{Journal: j, Changed: []string{"main.cpp"}})
	if err != nil {
		t.Fatal(err)
	}
	reused := map[string]bool{}
	for _, name := range res.Reused {
		reused[name] = true
	}
	if !reused["include-cycle"] {
		t.Errorf("include-cycle not reused on a routine-only diff (reused=%v)", res.Reused)
	}
	if !reused["pdb-recovery"] {
		t.Errorf("pdb-recovery not reused on a routine-only diff (reused=%v)", res.Reused)
	}
	if reused["dead-routine"] {
		t.Errorf("dead-routine reused although a routine changed (reused=%v)", res.Reused)
	}
	full := analysis.Run(db2, analysis.All(), analysis.Options{})
	if !reflect.DeepEqual(res.Diags, full) {
		t.Errorf("incremental diverges from full run:\n%v\nvs\n%v", res.Diags, full)
	}
	if res.Affected == nil || !res.Affected.ContainsUnit("main.cpp") {
		t.Errorf("affected set misses main.cpp: %v", res.Affected.Units())
	}
}

func TestIncrementalConfigChangeInvalidates(t *testing.T) {
	db := lintFixture(t)
	j := openJournal(t)
	loose := []analysis.Pass{&analysis.TemplateBloatPass{Threshold: 100}}
	tight := []analysis.Pass{&analysis.TemplateBloatPass{Threshold: 1}}

	if _, err := analysis.RunIncremental(db, loose,
		analysis.IncrementalOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	res, err := analysis.RunIncremental(db, tight,
		analysis.IncrementalOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reused) != 0 {
		t.Errorf("threshold change reused cached findings: %v", res.Reused)
	}
}

func TestIncrementalRequiresJournal(t *testing.T) {
	db := lintFixture(t)
	if _, err := analysis.RunIncremental(db, analysis.All(),
		analysis.IncrementalOptions{}); err == nil {
		t.Error("nil journal accepted")
	}
}

func TestInputDeclarations(t *testing.T) {
	// Every registered pass declares its inputs (no pass silently falls
	// back to "everything" — the fallback is for external passes).
	for _, p := range analysis.All() {
		if _, ok := p.(analysis.InputDeclarer); !ok {
			t.Errorf("pass %s does not declare inputs", p.Name())
		}
		secs := analysis.InputsOf(p)
		if len(secs) == 0 {
			t.Errorf("pass %s declares no input sections", p.Name())
		}
		seen := map[query.Section]bool{}
		for _, s := range secs {
			if seen[s] {
				t.Errorf("pass %s declares %s twice", p.Name(), s)
			}
			seen[s] = true
		}
	}
}
