package analysis

import (
	"fmt"
	"strings"

	"pdt/internal/ductape"
)

// recoveryPass surfaces the diagnostics of a lenient (recovering) load
// as analysis findings, so a database that was ingested past corruption
// says so in the same report as the semantic passes — the CodeChecker
// discipline of degrading loudly instead of silently. On a strictly
// loaded database it reports nothing.
type recoveryPass struct{}

// NewRecoveryPass returns the ingestion-recovery pass.
func NewRecoveryPass() Pass { return recoveryPass{} }

func (recoveryPass) Name() string { return "pdb-recovery" }

func (recoveryPass) Doc() string {
	return "spans the lenient reader skipped while ingesting this database (recovered corruption)"
}

func (recoveryPass) Run(db *ductape.PDB) []Diagnostic {
	var out []Diagnostic
	for _, d := range db.Raw().Recovered {
		msg := d.Cause
		if d.Tag != "" && !strings.Contains(msg, d.Tag) {
			msg = fmt.Sprintf("%s (item %s)", msg, d.Tag)
		}
		if n := len(d.Skipped); n > 0 {
			msg = fmt.Sprintf("%s; %d line(s) dropped", msg, n)
		}
		out = append(out, Diagnostic{
			Pass:     "pdb-recovery",
			Severity: Warning,
			Loc:      Location{File: d.File, Line: d.StartLine},
			Message:  msg,
		})
	}
	return out
}
