package analysis

import (
	"fmt"

	"pdt/internal/ductape"
)

// deadRoutinePass reports routines with a recorded body that the
// static call graph cannot reach from the program's entry points — the
// def/use-style reachability query DUCT motivates over exactly the
// call-vector data DUCTAPE exposes.
//
// Roots are every routine named "main" plus every extern-"C" routine
// with a body (exported entry points a non-C++ caller may invoke).
// Virtual dispatch is over-approximated: reaching a routine that is
// (or is called) virtual also reaches every override of it in derived
// classes. To stay conservative the pass never reports constructors,
// destructors, conversion operators, or virtual routines themselves
// (they may run implicitly or through dispatch edges the database does
// not record), and it reports nothing when the database has no roots
// at all (a pure library).
type deadRoutinePass struct{}

// NewDeadRoutinePass returns the call-graph reachability pass.
func NewDeadRoutinePass() Pass { return deadRoutinePass{} }

func (deadRoutinePass) Name() string { return "dead-routine" }

func (deadRoutinePass) Doc() string {
	return "routines with a body that are unreachable from main or any extern-\"C\" root"
}

func (deadRoutinePass) Run(db *ductape.PDB) []Diagnostic {
	var roots []*ductape.Routine
	for _, r := range db.Routines() {
		if r.Name() == "main" || (r.Linkage() == "C" && r.HasBody()) {
			roots = append(roots, r)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	overrides := overrideMap(db)
	reached := map[*ductape.Routine]bool{}
	var frontier []*ductape.Routine
	visit := func(r *ductape.Routine) {
		if r == nil || reached[r] {
			return
		}
		reached[r] = true
		frontier = append(frontier, r)
	}
	for _, r := range roots {
		visit(r)
	}
	for len(frontier) > 0 {
		r := frontier[0]
		frontier = frontier[1:]
		for _, call := range r.Callees() {
			callee := call.Call()
			visit(callee)
			if call.IsVirtual() || callee.IsVirtual() {
				for _, o := range overrides[callee] {
					visit(o)
				}
			}
		}
	}

	var out []Diagnostic
	for _, r := range db.Routines() {
		if reached[r] || !r.HasBody() || r.IsVirtual() {
			continue
		}
		switch r.Kind() {
		case "ctor", "dtor", "conv":
			continue
		}
		if f := r.Location().File; f != nil && f.System() {
			continue
		}
		out = append(out, Diagnostic{
			Pass:     "dead-routine",
			Severity: Warning,
			Loc:      LocationOf(r.Location()),
			Message: fmt.Sprintf("routine '%s' is defined but unreachable from any entry point",
				r.FullName()),
		})
	}
	return out
}

// overrideMap links every virtual routine to the routines overriding
// it in transitively derived classes (same name and parameter count,
// matching the frontend's implicit-virtual rule).
func overrideMap(db *ductape.PDB) map[*ductape.Routine][]*ductape.Routine {
	out := map[*ductape.Routine][]*ductape.Routine{}
	for _, c := range db.Classes() {
		for _, f := range c.Functions() {
			if !f.IsVirtual() {
				continue
			}
			for _, b := range c.AllBases() {
				for _, g := range b.Functions() {
					if g.IsVirtual() && g.Name() == f.Name() && arity(g) == arity(f) {
						out[g] = append(out[g], f)
					}
				}
			}
		}
	}
	return out
}

func arity(r *ductape.Routine) int {
	if sig := r.Signature(); sig != nil {
		return len(sig.ArgumentTypes())
	}
	return 0
}
