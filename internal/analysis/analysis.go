// Package analysis is a static-analysis pass framework over DUCTAPE
// program databases — the analysis layer the paper positions PDB +
// DUCTAPE as the substrate for. A Pass inspects one *ductape.PDB and
// reports Diagnostics; the driver (Run) executes enabled passes
// concurrently and returns a deterministically ordered report.
//
// The design follows checker frameworks such as CodeChecker: every
// pass is identified by a stable kebab-case name, produces uniform
// diagnostics (severity, location, message, related locations), and
// the whole report maps onto severity-based exit codes for CI use
// (see ExitCode). The pdblint command is the CLI front end.
package analysis

import (
	"encoding/json"
	"fmt"

	"pdt/internal/ductape"
)

// Severity classifies a diagnostic.
type Severity int

// Severity levels, ordered by increasing gravity.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Location is a plain (file name, line, column) position, detached
// from the database so diagnostics can outlive it and serialize
// directly. A zero Location means "whole database".
type Location struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// Valid reports whether the location names a file.
func (l Location) Valid() bool { return l.File != "" }

func (l Location) String() string {
	if !l.Valid() {
		return "<pdb>"
	}
	if l.Line == 0 {
		return l.File
	}
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Col)
}

// LocationOf converts a resolved DUCTAPE location.
func LocationOf(l ductape.Location) Location {
	if !l.Valid() {
		if l.File != nil {
			return Location{File: l.File.Name()}
		}
		return Location{}
	}
	return Location{File: l.File.Name(), Line: l.Line, Col: l.Col}
}

// FileLocation names a file without a line (used for findings about
// the file itself, such as include-graph diagnostics).
func FileLocation(f *ductape.File) Location {
	if f == nil {
		return Location{}
	}
	return Location{File: f.Name()}
}

// Related is a secondary location attached to a diagnostic ("declared
// here", "other definition here").
type Related struct {
	Message string   `json:"message"`
	Loc     Location `json:"loc"`
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass     string    `json:"pass"`
	Severity Severity  `json:"severity"`
	Loc      Location  `json:"loc"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
}

// Pass is one static-analysis check over a program database. Run must
// be safe to execute concurrently with other passes on the same
// database: passes treat the PDB as read-only and must not use the
// shared traversal Flag fields.
type Pass interface {
	// Name is the stable pass identifier ("dead-routine").
	Name() string
	// Doc is a one-line description shown by pdblint -list.
	Doc() string
	// Run analyzes the database and returns the findings.
	Run(db *ductape.PDB) []Diagnostic
}

// All returns a fresh instance of every registered pass, in the
// canonical order.
func All() []Pass {
	return []Pass{
		NewIntegrityPass(),
		NewRecoveryPass(),
		NewDeadRoutinePass(),
		NewIncludeCyclePass(),
		NewUnusedIncludePass(),
		NewHierarchyCheckPass(),
		NewTemplateBloatPass(),
		NewODRDuplicatePass(),
	}
}

// Select resolves a list of pass names (as given to pdblint -passes)
// into pass instances, preserving the canonical order. An empty list
// selects every pass; unknown names are an error.
func Select(names []string) ([]Pass, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Pass{}
	for _, p := range all {
		byName[p.Name()] = p
	}
	want := map[string]bool{}
	for _, n := range names {
		if _, ok := byName[n]; !ok {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
		want[n] = true
	}
	var out []Pass
	for _, p := range all {
		if want[p.Name()] {
			out = append(out, p)
		}
	}
	return out, nil
}
