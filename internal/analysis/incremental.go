package analysis

import (
	"encoding/json"
	"fmt"

	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/query"
)

// FindingsVersion salts every incremental cache key; bump it whenever
// the diagnostic encoding, the fingerprint scheme, or any pass's
// semantics change in a way old cached findings would misrepresent.
const FindingsVersion = "pdblint-findings v1"

// IncrementalOptions configures RunIncremental.
type IncrementalOptions struct {
	Options

	// Journal is the content-addressed findings database. Required.
	Journal *durable.Journal
	// Graph is the dependency graph of the database; built on demand
	// when nil.
	Graph *query.Graph
	// Changed is the changed-file list driving the affected-set report.
	// It does not gate reuse — reuse is decided by exact content
	// fingerprints — but it is what the tool reports as invalidated.
	Changed []string
}

// IncrementalResult is the outcome of an incremental run.
type IncrementalResult struct {
	// Diags is the full report, byte-identical to what a non-incremental
	// Run over the same database and passes produces.
	Diags []Diagnostic
	// Reused and Reran name the passes whose findings were spliced from
	// the journal and those that executed, in canonical pass order.
	Reused []string
	Reran  []string
	// Affected is the transitive invalidation set of Changed (nil when
	// no changed files were given).
	Affected *query.AffectedSet
}

// RunIncremental is the incremental variant of Run: each pass's cache
// key is built from the content digests of its declared input sections
// (see InputDeclarer), and passes whose key hits the findings journal
// are spliced from cache instead of executing. Because keys are
// content-addressed and passes are deterministic, the spliced report
// is byte-identical to a full run; the changed-file list only shapes
// the Affected report and metrics, never correctness.
func RunIncremental(db *ductape.PDB, passes []Pass, opts IncrementalOptions) (*IncrementalResult, error) {
	if opts.Journal == nil {
		return nil, fmt.Errorf("incremental run requires a findings journal")
	}
	sp := opts.Metrics.StartSpan("incremental")
	defer sp.End()

	g := opts.Graph
	if g == nil {
		gs := sp.Start("graph.build")
		g = query.New(db)
		gs.AddItems(int64(g.Len()))
		gs.End()
	}

	fs := sp.Start("fingerprint")
	fp := query.Fingerprint(db)
	fs.AddItems(int64(len(fp.Units())))
	fs.End()

	res := &IncrementalResult{}
	if len(opts.Changed) > 0 {
		as := sp.Start("affected")
		res.Affected = g.Affected(opts.Changed)
		as.AddItems(int64(res.Affected.Len()))
		as.End()
		opts.Metrics.Counter("lint.affected_units").Add(int64(len(res.Affected.Units())))
	}

	keys := make([]string, len(passes))
	cached := make([][]Diagnostic, len(passes))
	var stale []Pass
	var staleIdx []int
	for i, p := range passes {
		keys[i] = passKey(p, fp)
		payload, ok, invalid := opts.Journal.Load(keys[i])
		if invalid {
			opts.Metrics.Counter("findings.invalidated").Add(1)
			_ = opts.Journal.Remove(keys[i])
		}
		if ok {
			var diags []Diagnostic
			if err := json.Unmarshal(payload, &diags); err == nil {
				cached[i] = diags
				res.Reused = append(res.Reused, p.Name())
				continue
			}
			// A payload that passed the checksum but does not decode is
			// from a foreign writer; drop it and re-run.
			opts.Metrics.Counter("findings.invalidated").Add(1)
			_ = opts.Journal.Remove(keys[i])
		}
		stale = append(stale, p)
		staleIdx = append(staleIdx, i)
		res.Reran = append(res.Reran, p.Name())
	}
	opts.Metrics.Counter("lint.reused").Add(int64(len(res.Reused)))
	opts.Metrics.Counter("lint.reran").Add(int64(len(res.Reran)))

	fresh := runPasses(db, stale, opts.Options)
	for k, i := range staleIdx {
		// Store per-pass findings pre-sorted; Sort is stable and keys on
		// (loc, pass, message), so sorting per pass first cannot change
		// the final spliced order.
		diags := fresh[k]
		Sort(diags)
		cached[i] = diags
		payload, err := json.Marshal(diags)
		if err != nil {
			return nil, fmt.Errorf("encode %s findings: %w", passes[i].Name(), err)
		}
		if err := opts.Journal.Store(keys[i], payload); err != nil {
			return nil, fmt.Errorf("store %s findings: %w", passes[i].Name(), err)
		}
		opts.Metrics.Counter("findings.stored").Add(1)
	}

	for _, diags := range cached {
		res.Diags = append(res.Diags, diags...)
	}
	opts.Metrics.Counter("analysis.findings").Add(int64(len(res.Diags)))
	Sort(res.Diags)
	return res, nil
}

// passKey derives the content-addressed cache key of one pass: the
// cache format version, the pass identity and configuration, and the
// digest of every declared input section. Two databases with equal
// declared-section content yield the same key, however they were
// produced.
func passKey(p Pass, fp *query.Fingerprints) string {
	parts := []string{FindingsVersion, p.Name(), ConfigOf(p)}
	for _, sec := range InputsOf(p) {
		parts = append(parts, string(sec), fp.SectionDigest(sec))
	}
	return durable.KeyOf(parts...)
}
