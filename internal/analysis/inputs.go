package analysis

import (
	"fmt"

	"pdt/internal/query"
)

// InputDeclarer is the optional Pass extension consumed by the
// incremental driver: a pass declares which fingerprint sections of
// the database (see query.Section) its findings can depend on. The
// incremental cache key of a pass is built only from the digests of
// its declared sections, so a change that leaves those sections
// untouched reuses the pass's cached findings.
//
// Declarations must be sound: every database facet the pass reads has
// to be covered. Passes that do not implement the interface are
// treated as reading everything (InputsOf falls back to all sections),
// which is always correct and never incremental.
type InputDeclarer interface {
	Inputs() []query.Section
}

// ConfigFingerprinter is the optional Pass extension for passes whose
// findings depend on configuration beyond the database (thresholds,
// modes). The string becomes part of the incremental cache key, so
// changing the configuration invalidates the cached findings.
type ConfigFingerprinter interface {
	ConfigFingerprint() string
}

// InputsOf returns the declared input sections of a pass, falling back
// to every section for passes that declare nothing.
func InputsOf(p Pass) []query.Section {
	if d, ok := p.(InputDeclarer); ok {
		return d.Inputs()
	}
	return query.Sections()
}

// ConfigOf returns the pass's configuration fingerprint, or "".
func ConfigOf(p Pass) string {
	if c, ok := p.(ConfigFingerprinter); ok {
		return c.ConfigFingerprint()
	}
	return ""
}

// pdb-integrity cross-checks every item table against every other, so
// it reads the whole database.
func (integrityPass) Inputs() []query.Section { return query.Sections() }

// pdb-recovery only replays the reader's recovery log.
func (recoveryPass) Inputs() []query.Section {
	return []query.Section{query.SecRecovered}
}

// dead-routine walks the call graph from the roots: routines and their
// calls, the classes that make members special (vtables, ctors), and
// the files that decide translation-unit roots.
func (deadRoutinePass) Inputs() []query.Section {
	return []query.Section{query.SecFiles, query.SecRoutines, query.SecClasses}
}

// include-cycle sees only the file include graph.
func (includeCyclePass) Inputs() []query.Section {
	return []query.Section{query.SecFiles}
}

// unused-include relates the include graph to where entities are
// defined and referenced.
func (unusedIncludePass) Inputs() []query.Section {
	return []query.Section{
		query.SecFiles, query.SecRoutines, query.SecClasses, query.SecTypes,
	}
}

// hierarchy-check reads class hierarchies and their member functions.
func (hierarchyCheckPass) Inputs() []query.Section {
	return []query.Section{query.SecClasses, query.SecRoutines}
}

// template-bloat counts instantiations of templates across classes and
// routines.
func (p *TemplateBloatPass) Inputs() []query.Section {
	return []query.Section{query.SecTemplates, query.SecClasses, query.SecRoutines}
}

// ConfigFingerprint keys the cache on the bloat threshold.
func (p *TemplateBloatPass) ConfigFingerprint() string {
	return fmt.Sprintf("threshold=%d", p.Threshold)
}

// odr-duplicate groups routine, class, and type definitions by
// qualified name (namespaces contribute to the names).
func (odrDuplicatePass) Inputs() []query.Section {
	return []query.Section{
		query.SecRoutines, query.SecClasses, query.SecTypes, query.SecNamespaces,
	}
}
