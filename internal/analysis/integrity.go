package analysis

import "pdt/internal/ductape"

// integrityPass surfaces pdb.Validate violations as diagnostics, so a
// corrupted or hand-edited database fails loudly before the semantic
// passes interpret it. The other passes tolerate dangling references
// (nil pointers simply vanish from the DUCTAPE views), so integrity
// findings explain otherwise-silent gaps in their reports.
type integrityPass struct{}

// NewIntegrityPass returns the referential-integrity pass.
func NewIntegrityPass() Pass { return integrityPass{} }

func (integrityPass) Name() string { return "pdb-integrity" }

func (integrityPass) Doc() string {
	return "referential integrity of the raw database (dangling refs, duplicate IDs, bad locations)"
}

func (integrityPass) Run(db *ductape.PDB) []Diagnostic {
	var out []Diagnostic
	for _, err := range db.Raw().Validate() {
		out = append(out, Diagnostic{
			Pass:     "pdb-integrity",
			Severity: Error,
			Message:  err.Error(),
		})
	}
	return out
}
