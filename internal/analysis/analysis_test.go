package analysis_test

import (
	"strings"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/pdb"
)

// buildDB compiles a source set and wraps it in DUCTAPE; main.cpp is
// the translation unit.
func buildDB(t *testing.T, src string, extra map[string]string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

// runPass executes a single pass by name over the database.
func runPass(t *testing.T, db *ductape.PDB, name string) []analysis.Diagnostic {
	t.Helper()
	passes, err := analysis.Select([]string{name})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run(db, passes, analysis.Options{Workers: 1})
}

// messages joins all diagnostic messages, for contains-checks.
func messages(diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.Message)
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestDeadRoutinePass(t *testing.T) {
	db := buildDB(t, `
int usedHelper(int x) { return x + 1; }
int deadHelper(int x) { return x * 2; }
int deadCallsLive(int x) { return usedHelper(x); }
int main() { return usedHelper(1); }
`, nil)
	diags := runPass(t, db, "dead-routine")
	msgs := messages(diags)
	if !strings.Contains(msgs, "'deadHelper(int)' is defined but unreachable") {
		t.Errorf("deadHelper not reported:\n%s", msgs)
	}
	if !strings.Contains(msgs, "'deadCallsLive(int)'") {
		t.Errorf("deadCallsLive not reported:\n%s", msgs)
	}
	if strings.Contains(msgs, "'usedHelper") || strings.Contains(msgs, "'main") {
		t.Errorf("live routine reported:\n%s", msgs)
	}
}

func TestDeadRoutineVirtualDispatch(t *testing.T) {
	// area() is called virtually through the base; the derived override
	// must count as reachable even though no call site names it.
	db := buildDB(t, `
class Shape {
public:
    Shape() { }
    virtual ~Shape() { }
    virtual int area() const { return 0; }
};
class Circle : public Shape {
public:
    Circle() { }
    int area() const { return 3; }
};
int measure(const Shape & s) { return s.area(); }
int main() {
    Circle c;
    return measure(c);
}
`, nil)
	diags := runPass(t, db, "dead-routine")
	if msgs := messages(diags); strings.Contains(msgs, "area") {
		t.Errorf("virtual override reported dead:\n%s", msgs)
	}
}

func TestDeadRoutineNoRoots(t *testing.T) {
	// A pure library (no main) has no entry points; everything would be
	// "dead", so the pass must stay silent.
	db := buildDB(t, `
int alpha(int x) { return x + 1; }
int beta(int x) { return alpha(x); }
`, nil)
	if diags := runPass(t, db, "dead-routine"); len(diags) != 0 {
		t.Errorf("library reported: %v", diags)
	}
}

func TestIncludeCyclePass(t *testing.T) {
	db := buildDB(t, `#include "a.h"
int main() { Alpha a; a.id = 1; return a.id; }
`, map[string]string{
		"a.h": "#ifndef A_H\n#define A_H\n#include \"b.h\"\nstruct Alpha { int id; };\n#endif\n",
		"b.h": "#ifndef B_H\n#define B_H\n#include \"a.h\"\nstruct Beta { int id; };\n#endif\n",
	})
	diags := runPass(t, db, "include-cycle")
	if len(diags) != 1 {
		t.Fatalf("cycle diagnostics = %d: %v", len(diags), diags)
	}
	if want := "include cycle: a.h -> b.h -> a.h"; diags[0].Message != want {
		t.Errorf("message = %q, want %q", diags[0].Message, want)
	}
}

func TestIncludeCycleCleanTree(t *testing.T) {
	db := buildDB(t, `#include "a.h"
int main() { Alpha a; a.id = 1; return a.id; }
`, map[string]string{
		"a.h": "#ifndef A_H\n#define A_H\nstruct Alpha { int id; };\n#endif\n",
	})
	if diags := runPass(t, db, "include-cycle"); len(diags) != 0 {
		t.Errorf("clean tree reported: %v", diags)
	}
}

func TestUnusedIncludePass(t *testing.T) {
	db := buildDB(t, `#include "used.h"
#include "unused.h"
int main() { Alpha a; a.id = 2; return touch(a); }
`, map[string]string{
		"used.h":   "#ifndef USED_H\n#define USED_H\nstruct Alpha { int id; };\nint touch(Alpha & a) { return a.id; }\n#endif\n",
		"unused.h": "#ifndef UNUSED_H\n#define UNUSED_H\nstruct Widget { int w; };\n#endif\n",
	})
	diags := runPass(t, db, "unused-include")
	msgs := messages(diags)
	if !strings.Contains(msgs, "'main.cpp' includes 'unused.h' but uses nothing it provides") {
		t.Errorf("unused.h not reported:\n%s", msgs)
	}
	if strings.Contains(msgs, "'used.h' but") {
		t.Errorf("used.h falsely reported:\n%s", msgs)
	}
}

func TestUnusedIncludeTransitiveUse(t *testing.T) {
	// main uses inner.h's class only through outer.h: the outer include
	// is used (it transitively provides Inner), so nothing is reported
	// for main.cpp.
	db := buildDB(t, `#include "outer.h"
int main() { Inner i; return i.touch(); }
`, map[string]string{
		"outer.h": "#ifndef OUTER_H\n#define OUTER_H\n#include \"inner.h\"\n#endif\n",
		"inner.h": "#ifndef INNER_H\n#define INNER_H\nstruct Inner { int v; int touch() { v = 1; return v; } };\n#endif\n",
	})
	diags := runPass(t, db, "unused-include")
	for _, d := range diags {
		if strings.HasPrefix(d.Message, "'main.cpp'") {
			t.Errorf("transitively used include reported: %s", d.Message)
		}
	}
}

func TestHierarchyCheckPass(t *testing.T) {
	db := buildDB(t, `
class Shape {
public:
    Shape() { }
    ~Shape() { }
    virtual int area() const { return 0; }
    virtual void scale(double f) { }
};
class Circle : public Shape {
public:
    Circle() { }
    int area() const { return 3; }
    void scale(int a, int b) { }
};
int main() {
    Circle c;
    c.scale(1, 2);
    return c.area();
}
`, nil)
	diags := runPass(t, db, "hierarchy-check")
	msgs := messages(diags)
	if !strings.Contains(msgs, "polymorphic class 'Shape' is used as a base but its destructor is not virtual") {
		t.Errorf("non-virtual destructor not reported:\n%s", msgs)
	}
	// Circle::scale(int, int) differs in arity, so the frontend keeps
	// it non-virtual: it hides Shape::scale(double).
	if !strings.Contains(msgs, "hides inherited virtual 'Shape::scale(double)'") {
		t.Errorf("hidden virtual not reported:\n%s", msgs)
	}
	// Circle::area is an implicit-virtual override, not a hide.
	if strings.Contains(msgs, "'Circle::area() const' hides") {
		t.Errorf("override reported as hide:\n%s", msgs)
	}
}

func TestHierarchyCheckVirtualDtorClean(t *testing.T) {
	db := buildDB(t, `
class Shape {
public:
    Shape() { }
    virtual ~Shape() { }
    virtual int area() const { return 0; }
};
class Circle : public Shape {
public:
    Circle() { }
    int area() const { return 3; }
};
int main() { Circle c; return c.area(); }
`, nil)
	if diags := runPass(t, db, "hierarchy-check"); len(diags) != 0 {
		t.Errorf("clean hierarchy reported: %v", messages(diags))
	}
}

func TestTemplateBloatPass(t *testing.T) {
	db := buildDB(t, `
template <class T, int N>
class Slot {
public:
    int cap() const { return N; }
};
int main() {
    int s = 0;
    { Slot<int, 1> a; s += a.cap(); }
    { Slot<int, 2> a; s += a.cap(); }
    { Slot<int, 3> a; s += a.cap(); }
    { Slot<int, 4> a; s += a.cap(); }
    return s;
}
`, nil)
	passes := []analysis.Pass{&analysis.TemplateBloatPass{Threshold: 3}}
	diags := analysis.Run(db, passes, analysis.Options{Workers: 1})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "template 'Slot' has 4 instantiations (threshold 3)") {
			found = true
			if len(d.Related) != 4 {
				t.Errorf("related instantiations = %d, want 4", len(d.Related))
			}
		}
	}
	if !found {
		t.Errorf("Slot bloat not reported: %v", messages(diags))
	}

	// At the default threshold (8) the same database is clean.
	if diags := runPass(t, db, "template-bloat"); len(diags) != 0 {
		t.Errorf("default threshold reported: %v", messages(diags))
	}
}

func TestODRDuplicatePass(t *testing.T) {
	// Hand-assemble the post-merge shape of two translation units that
	// disagree on helper's return type: same name, same parameters,
	// different signatures.
	dbA := buildDB(t, `
int helper(int x) { return x + 1; }
int useA() { return helper(1); }
`, nil)
	dbB := buildDB(t, `
double helper(int x) { return x * 0.5; }
double useB() { return helper(2); }
`, nil)
	merged := ductape.Merge(dbA, dbB)

	diags := runPass(t, merged, "odr-duplicate")
	msgs := messages(diags)
	if !strings.Contains(msgs, "routine 'helper(int)' has 2 conflicting signatures") {
		t.Errorf("conflicting signatures not reported:\n%s", msgs)
	}
}

func TestODRDuplicateCleanOverloads(t *testing.T) {
	// Legal overloads (distinct parameters) and const/non-const pairs
	// must not be reported.
	db := buildDB(t, `
class Box {
public:
    Box() : v(0) { }
    int get() { return v; }
    int get() const { return v; }
private:
    int v;
};
int pick(int x) { return x; }
double pick(double x) { return x; }
int main() {
    Box b;
    double d = pick(2.0);
    int r = pick(1) + b.get();
    if (d > 0)
        r = r + 1;
    return r;
}
`, nil)
	if diags := runPass(t, db, "odr-duplicate"); len(diags) != 0 {
		t.Errorf("legal overloads reported: %v", messages(diags))
	}
}

func TestIntegrityPass(t *testing.T) {
	db := buildDB(t, `int main() { return 0; }`, nil)
	if diags := runPass(t, db, "pdb-integrity"); len(diags) != 0 {
		t.Errorf("valid database reported: %v", messages(diags))
	}

	// Corrupt a copy: point a call at a routine that does not exist.
	raw := db.Raw()
	raw.Routines[0].Calls = append(raw.Routines[0].Calls, pdb.Call{
		Callee: pdb.Ref{Prefix: "ro", ID: 9999},
	})
	bad := ductape.FromRaw(raw)
	diags := runPass(t, bad, "pdb-integrity")
	if len(diags) == 0 {
		t.Fatal("corrupted database not reported")
	}
	if diags[0].Severity != analysis.Error {
		t.Errorf("severity = %v, want error", diags[0].Severity)
	}
}
