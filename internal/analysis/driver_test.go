package analysis_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/ductape"
	"pdt/internal/schema"
)

// lintFixture builds a database that triggers several passes at once:
// a dead routine, a non-virtual destructor on a polymorphic base, a
// hidden virtual, and an include cycle.
func lintFixture(t *testing.T) *ductape.PDB {
	t.Helper()
	return buildDB(t, `#include "a.h"
class Shape {
public:
    Shape() { }
    ~Shape() { }
    virtual void scale(double f) { }
};
class Circle : public Shape {
public:
    Circle() { }
    void scale(int a, int b) { }
};
int deadHelper(int x) { return x * 2; }
int main() {
    Circle c;
    c.scale(1, 2);
    Alpha a;
    return probe(a);
}
`, map[string]string{
		"a.h": "#ifndef A_H\n#define A_H\n#include \"b.h\"\nstruct Alpha { int id; };\nint probe(Alpha & a) { a.id = 1; return a.id; }\n#endif\n",
		"b.h": "#ifndef B_H\n#define B_H\n#include \"a.h\"\nstruct Beta { int id; };\n#endif\n",
	})
}

func TestRunParallelMatchesSerial(t *testing.T) {
	db := lintFixture(t)
	serial := analysis.Run(db, analysis.All(), analysis.Options{Workers: 1})
	if len(serial) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for workers := 2; workers <= 8; workers *= 2 {
		parallel := analysis.Run(db, analysis.All(), analysis.Options{Workers: workers})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d diverges from serial:\n%v\nvs\n%v",
				workers, serial, parallel)
		}
	}
}

func TestRunDeterministicOrder(t *testing.T) {
	db := lintFixture(t)
	first := analysis.Run(db, analysis.All(), analysis.Options{})
	for i := 0; i < 5; i++ {
		again := analysis.Run(db, analysis.All(), analysis.Options{})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged", i)
		}
	}
	// Sorted by file, then line.
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Loc.File > b.Loc.File {
			t.Errorf("unsorted: %v before %v", a.Loc, b.Loc)
		}
		if a.Loc.File == b.Loc.File && a.Loc.Line > b.Loc.Line {
			t.Errorf("unsorted lines: %v before %v", a.Loc, b.Loc)
		}
	}
}

func TestSelect(t *testing.T) {
	all := analysis.All()
	if len(all) < 7 {
		t.Fatalf("registered passes = %d, want >= 7", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %T missing name or doc", p)
		}
		if seen[p.Name()] {
			t.Errorf("duplicate pass name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	for _, want := range []string{"pdb-integrity", "dead-routine", "include-cycle",
		"unused-include", "hierarchy-check", "template-bloat", "odr-duplicate"} {
		if !seen[want] {
			t.Errorf("pass %q not registered", want)
		}
	}

	// Selection preserves canonical order regardless of request order.
	sel, err := analysis.Select([]string{"odr-duplicate", "dead-routine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name() != "dead-routine" || sel[1].Name() != "odr-duplicate" {
		t.Errorf("selection = %v", []string{sel[0].Name(), sel[1].Name()})
	}
	if _, err := analysis.Select([]string{"no-such-pass"}); err == nil {
		t.Error("unknown pass accepted")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		diags []analysis.Diagnostic
		want  int
	}{
		{nil, 0},
		{[]analysis.Diagnostic{{Severity: analysis.Info}}, 0},
		{[]analysis.Diagnostic{{Severity: analysis.Info}, {Severity: analysis.Warning}}, 1},
		{[]analysis.Diagnostic{{Severity: analysis.Warning}, {Severity: analysis.Error}}, 2},
	}
	for i, c := range cases {
		if got := analysis.ExitCode(c.diags); got != c.want {
			t.Errorf("case %d: exit = %d, want %d", i, got, c.want)
		}
	}
}

func TestWriteText(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pass: "dead-routine", Severity: analysis.Warning,
			Loc:     analysis.Location{File: "main.cpp", Line: 12, Col: 1},
			Message: "routine 'deadHelper(int)' is defined but unreachable from any entry point",
			Related: []analysis.Related{{Message: "note text",
				Loc: analysis.Location{File: "a.h", Line: 3, Col: 1}}},
		},
		{Pass: "pdb-integrity", Severity: analysis.Error, Message: "dangling reference ro#9"},
	}
	var sb strings.Builder
	if err := analysis.WriteText(&sb, diags); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"main.cpp:12:1: warning: routine 'deadHelper(int)' is defined but unreachable from any entry point [dead-routine]",
		"    note: note text — a.h:3:1",
		"<pdb>: error: dangling reference ro#9 [pdb-integrity]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	db := lintFixture(t)
	diags := analysis.Run(db, analysis.All(), analysis.Options{})
	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	var parsed analysis.Report
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if parsed.SchemaVersion != schema.Version {
		t.Errorf("schema_version = %d, want %d", parsed.SchemaVersion, schema.Version)
	}
	if !reflect.DeepEqual(diags, parsed.Findings) {
		t.Errorf("JSON round trip diverged:\n%v\nvs\n%v", diags, parsed.Findings)
	}

	// Empty report renders as an empty findings array, not null.
	sb.Reset()
	if err := analysis.WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	var empty analysis.Report
	if err := json.Unmarshal([]byte(sb.String()), &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Findings == nil || len(empty.Findings) != 0 {
		t.Errorf("empty report = %q", sb.String())
	}
}
