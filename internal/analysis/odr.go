package analysis

import (
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
)

// odrDuplicatePass reports one-definition-rule hazards that survive in
// a database: duplicate class definitions under one full name, routine
// declarations that differ only in return type (not a legal overload),
// and identical routine definitions recorded at several distinct
// sites. ductape.Merge keys classes by full name and routines by
// (owner, name, signature), so exactly these conflicts are what a
// merge of disagreeing translation units either silently collapses or
// carries through — this pass makes them visible before or after the
// merge.
type odrDuplicatePass struct{}

// NewODRDuplicatePass returns the duplicate/conflicting-definition
// pass.
func NewODRDuplicatePass() Pass { return odrDuplicatePass{} }

func (odrDuplicatePass) Name() string { return "odr-duplicate" }

func (odrDuplicatePass) Doc() string {
	return "conflicting or duplicate definitions that violate the one-definition rule"
}

func (odrDuplicatePass) Run(db *ductape.PDB) []Diagnostic {
	var out []Diagnostic
	out = append(out, duplicateClasses(db)...)
	out = append(out, conflictingRoutines(db)...)
	Sort(out)
	return out
}

func duplicateClasses(db *ductape.PDB) []Diagnostic {
	groups := map[string][]*ductape.Class{}
	for _, c := range db.Classes() {
		groups[c.FullName()] = append(groups[c.FullName()], c)
	}
	// Iterate groups by sorted name: the final Sort orders the report,
	// but building it deterministically keeps every intermediate state
	// (and any future tie) independent of Go's map iteration order.
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Diagnostic
	for _, name := range names {
		cs := groups[name]
		if len(cs) < 2 {
			continue
		}
		sort.Slice(cs, func(i, j int) bool { return classOrder(cs[i]) < classOrder(cs[j]) })
		diag := Diagnostic{
			Pass:     "odr-duplicate",
			Severity: Error,
			Loc:      LocationOf(cs[0].Location()),
			Message: fmt.Sprintf("class '%s' is defined %d times; pdbmerge would collapse these by name",
				name, len(cs)),
		}
		for _, other := range cs[1:] {
			diag.Related = append(diag.Related, Related{
				Message: fmt.Sprintf("also defined as cl#%d", other.ID()),
				Loc:     LocationOf(other.Location()),
			})
		}
		out = append(out, diag)
	}
	return out
}

// conflictingRoutines groups routines by owner, name, and parameter
// type list. Legal C++ overloads differ in their parameters, so two
// members of one group with different full signatures conflict
// (typically a return-type disagreement between translation units);
// two members with the same signature are duplicate definitions that
// ductape.Merge would have collapsed into one, silently preferring the
// richer body.
func conflictingRoutines(db *ductape.PDB) []Diagnostic {
	// const-ness participates in overload resolution, so const and
	// non-const members with equal parameters are distinct groups.
	type groupKey struct {
		owner, name, args string
		isConst           bool
	}
	// order follows db.Routines(), which is deterministic; the caller's
	// final Sort normalizes the diagnostic order, so the groups need no
	// sorting of their own.
	byKey := map[groupKey][]*ductape.Routine{}
	var order []groupKey
	for _, r := range db.Routines() {
		key := groupKey{ownerOf(r), r.Name(), argSpelling(r), r.IsConst()}
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], r)
	}

	var out []Diagnostic
	for _, key := range order {
		rs := byKey[key]
		if len(rs) < 2 {
			continue
		}
		sort.Slice(rs, func(i, j int) bool { return routineOrder(rs[i]) < routineOrder(rs[j]) })
		sigs := map[string]bool{}
		bodies := 0
		for _, r := range rs {
			sigs[sigSpelling(r)] = true
			if r.HasBody() {
				bodies++
			}
		}
		first := rs[0]
		switch {
		case len(sigs) > 1:
			diag := Diagnostic{
				Pass:     "odr-duplicate",
				Severity: Error,
				Loc:      LocationOf(first.Location()),
				Message: fmt.Sprintf("routine '%s' has %d conflicting signatures for the same parameter list",
					first.FullName(), len(sigs)),
			}
			for _, r := range rs[1:] {
				diag.Related = append(diag.Related, Related{
					Message: fmt.Sprintf("conflicting declaration with signature '%s'", sigSpelling(r)),
					Loc:     LocationOf(r.Location()),
				})
			}
			out = append(out, diag)
		case bodies > 1:
			diag := Diagnostic{
				Pass:     "odr-duplicate",
				Severity: Error,
				Loc:      LocationOf(first.Location()),
				Message:  fmt.Sprintf("routine '%s' is defined %d times", first.FullName(), bodies),
			}
			for _, r := range rs[1:] {
				if !r.HasBody() {
					continue
				}
				diag.Related = append(diag.Related, Related{
					Message: fmt.Sprintf("also defined as ro#%d", r.ID()),
					Loc:     LocationOf(r.Location()),
				})
			}
			out = append(out, diag)
		}
	}
	return out
}

func ownerOf(r *ductape.Routine) string {
	if c := r.ParentClass(); c != nil {
		return "cl:" + c.FullName()
	}
	if n := r.ParentNamespace(); n != nil && n.Name() != "" {
		return "na:" + n.Name()
	}
	return ""
}

func argSpelling(r *ductape.Routine) string {
	sig := r.Signature()
	if sig == nil {
		return ""
	}
	var parts []string
	for _, a := range sig.ArgumentTypes() {
		if a != nil {
			parts = append(parts, a.Name())
		}
	}
	return strings.Join(parts, ", ")
}

func sigSpelling(r *ductape.Routine) string {
	if sig := r.Signature(); sig != nil {
		return sig.Name()
	}
	return ""
}

func classOrder(c *ductape.Class) string {
	return fmt.Sprintf("%s|%08d", LocationOf(c.Location()), c.ID())
}

func routineOrder(r *ductape.Routine) string {
	return fmt.Sprintf("%s|%08d", LocationOf(r.Location()), r.ID())
}
