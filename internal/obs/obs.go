// Package obs is the toolkit's self-instrumentation layer: the paper's
// TAU side wraps *other* programs in scoped timers and run-time
// statistics (Figures 6-7); obs turns the same idea inward and profiles
// the PDT pipeline itself. It provides atomic counters and gauges,
// monotonic-clock stage spans arranged in a hierarchical span tree
// (mirroring TAU's scoped TAU_PROFILE timers), a worker-pool
// utilization sampler, and text/JSON snapshot exporters.
//
// The layer is built for a hot path that is usually *not* being
// observed: every method is nil-safe, so a nil *Metrics (and the nil
// *Counter, *Span, *Pool, *Worker handles it hands out) is a no-op that
// takes no locks and never reads the clock. Call sites thread one
// optional *Metrics through and instrument unconditionally.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdt/internal/schema"
)

// Metrics is one tool run's registry of counters, gauges, spans, and
// worker pools. The zero of its pointer type (nil) is the disabled
// instrument: usable everywhere, records nothing.
type Metrics struct {
	tool  string
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	pools    map[string]*Pool
	spans    []*Span // top-level spans in start order
}

// New returns an enabled registry stamped with the tool name it
// reports under.
func New(tool string) *Metrics {
	return &Metrics{
		tool:     tool,
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		pools:    map[string]*Pool{},
	}
}

// Counter returns the named monotonic counter, creating it on first
// use. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// StartSpan opens a top-level stage span. Returns nil on a nil
// registry.
func (m *Metrics) StartSpan(name string) *Span {
	if m == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	m.mu.Lock()
	m.spans = append(m.spans, s)
	m.mu.Unlock()
	return s
}

// Pool returns the named worker pool, creating it on first use. Pools
// are shared across concurrent pipeline invocations that use the same
// stage name, so per-worker busy time aggregates over the whole run.
// Returns nil on a nil registry.
func (m *Metrics) Pool(name string) *Pool {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pools[name]
	if p == nil {
		p = &Pool{name: name, start: time.Now()}
		m.pools[name] = p
	}
	return p
}

// Counter is an atomic monotonic total. Add with negative n is ignored
// so successive snapshots never observe a decrease.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on nil or negative n.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores the value. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Span is one scoped stage timer in the span tree: a name, a monotonic
// start, an end set once by End, and atomic item/byte totals. A nil
// span (instrumentation disabled) absorbs every call.
type Span struct {
	name  string
	start time.Time
	ended atomic.Bool
	dur   atomic.Int64 // ns, valid once ended
	items atomic.Int64
	bytes atomic.Int64

	mu       sync.Mutex
	children []*Span
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. The first call wins; later calls are no-ops, so
// a deferred End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Nanoseconds()
	if s.ended.CompareAndSwap(false, true) {
		s.dur.Store(d)
	}
}

// EndAt closes the span with an externally measured duration in
// nanoseconds (or abstract clock units), for adapters that import
// profile data measured by another runtime — the TAU virtual clock
// exports its step counts through this. The first close wins, as with
// End.
func (s *Span) EndAt(ns int64) {
	if s == nil {
		return
	}
	if s.ended.CompareAndSwap(false, true) {
		s.dur.Store(ns)
	}
}

// AddItems adds to the span's processed-item total. Negative n is
// ignored to keep snapshots monotonic.
func (s *Span) AddItems(n int64) {
	if s == nil || n < 0 {
		return
	}
	s.items.Add(n)
}

// AddBytes adds to the span's processed-byte total.
func (s *Span) AddBytes(n int64) {
	if s == nil || n < 0 {
		return
	}
	s.bytes.Add(n)
}

// Items returns the span's current item total (0 on nil).
func (s *Span) Items() int64 {
	if s == nil {
		return 0
	}
	return s.items.Load()
}

// elapsed returns the closed duration, or time-so-far for a live span.
func (s *Span) elapsed() int64 {
	if s.ended.Load() {
		return s.dur.Load()
	}
	return time.Since(s.start).Nanoseconds()
}

// Pool tracks worker utilization for one named pool: per-worker busy
// time plus pooled item/byte totals, sampled against the pool's wall
// time at export.
type Pool struct {
	name  string
	start time.Time
	items atomic.Int64
	bytes atomic.Int64

	mu      sync.Mutex
	workers []*Worker
}

// Worker returns the handle for worker index i, growing the pool as
// needed. Returns nil on a nil pool.
func (p *Pool) Worker(i int) *Worker {
	if p == nil || i < 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) <= i {
		p.workers = append(p.workers, &Worker{pool: p})
	}
	return p.workers[i]
}

// Worker accumulates one worker's busy time. Begin/End bracket a unit
// of work; the start time rides on the caller's stack so one handle is
// safe to share between concurrent pipeline invocations.
type Worker struct {
	pool *Pool
	busy atomic.Int64
}

// Begin marks the start of a unit of work. On a nil worker it returns
// the zero time without reading the clock.
func (w *Worker) Begin() time.Time {
	if w == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes the unit of work opened by Begin, crediting the elapsed
// time to this worker and the item/byte totals to the pool.
func (w *Worker) End(begin time.Time, items, bytes int64) {
	if w == nil {
		return
	}
	w.busy.Add(time.Since(begin).Nanoseconds())
	if items > 0 {
		w.pool.items.Add(items)
	}
	if bytes > 0 {
		w.pool.bytes.Add(bytes)
	}
}

// Snapshot is a point-in-time export of a registry. Totals are read
// atomically, so successive snapshots of monotonic instruments never
// go backwards. SchemaVersion carries the shared output-schema version
// (internal/schema) every snapshot is stamped with.
type Snapshot struct {
	SchemaVersion int              `json:"schema_version"`
	Tool          string           `json:"tool,omitempty"`
	WallNS        int64            `json:"wall_ns"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Gauges        map[string]int64 `json:"gauges,omitempty"`
	Spans         []SpanSnapshot   `json:"spans,omitempty"`
	Pools         []PoolSnapshot   `json:"pools,omitempty"`
}

// SpanSnapshot is one node of the exported span tree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	DurNS    int64          `json:"dur_ns"`
	Items    int64          `json:"items,omitempty"`
	Bytes    int64          `json:"bytes,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// PoolSnapshot is one worker pool's exported state. Utilization is the
// summed busy time over workers x wall time, in [0, 1] for settled
// pools (it can exceed 1 transiently while workers are mid-unit).
type PoolSnapshot struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	BusyNS      []int64 `json:"busy_ns"`
	Items       int64   `json:"items"`
	Bytes       int64   `json:"bytes,omitempty"`
	WallNS      int64   `json:"wall_ns"`
	Utilization float64 `json:"utilization"`
}

// Snapshot exports the current state. A nil registry exports the zero
// snapshot.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{SchemaVersion: schema.Version}
	}
	snap := Snapshot{
		SchemaVersion: schema.Version,
		Tool:          m.tool,
		WallNS:        time.Since(m.start).Nanoseconds(),
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	pools := make([]*Pool, 0, len(m.pools))
	for _, p := range m.pools {
		pools = append(pools, p)
	}
	spans := append([]*Span(nil), m.spans...)
	m.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	for _, s := range spans {
		snap.Spans = append(snap.Spans, s.snapshot())
	}
	sort.Slice(pools, func(i, j int) bool { return pools[i].name < pools[j].name })
	for _, p := range pools {
		snap.Pools = append(snap.Pools, p.snapshot())
	}
	return snap
}

func (s *Span) snapshot() SpanSnapshot {
	out := SpanSnapshot{
		Name:  s.name,
		DurNS: s.elapsed(),
		Items: s.items.Load(),
		Bytes: s.bytes.Load(),
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

func (p *Pool) snapshot() PoolSnapshot {
	p.mu.Lock()
	workers := append([]*Worker(nil), p.workers...)
	p.mu.Unlock()
	out := PoolSnapshot{
		Name:    p.name,
		Workers: len(workers),
		Items:   p.items.Load(),
		Bytes:   p.bytes.Load(),
		WallNS:  time.Since(p.start).Nanoseconds(),
	}
	var busyTotal int64
	for _, w := range workers {
		b := w.busy.Load()
		out.BusyNS = append(out.BusyNS, b)
		busyTotal += b
	}
	if out.Workers > 0 && out.WallNS > 0 {
		out.Utilization = float64(busyTotal) / (float64(out.Workers) * float64(out.WallNS))
	}
	return out
}

// Find returns the first span snapshot with the given name in a
// depth-first walk of the tree, or nil. It is the lookup used by tests
// and exporter consumers to assert stage presence.
func (s *Snapshot) Find(name string) *SpanSnapshot {
	return findSpan(s.Spans, name)
}

func findSpan(spans []SpanSnapshot, name string) *SpanSnapshot {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if hit := findSpan(spans[i].Children, name); hit != nil {
			return hit
		}
	}
	return nil
}
