package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilSafety: every handle the disabled path hands out must absorb
// every call — the guarantee that lets the pipelines instrument
// unconditionally.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	c := m.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter recorded a value")
	}
	g := m.Gauge("y")
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil gauge recorded a value")
	}
	s := m.StartSpan("stage")
	s.AddItems(3)
	s.AddBytes(9)
	child := s.Start("child")
	child.End()
	s.End()
	if s.Items() != 0 {
		t.Error("nil span recorded items")
	}
	p := m.Pool("pool")
	w := p.Worker(0)
	t0 := w.Begin()
	if !t0.IsZero() {
		t.Error("nil worker Begin read the clock")
	}
	w.End(t0, 1, 2)
	snap := m.Snapshot()
	if snap.Tool != "" || snap.Spans != nil || snap.Pools != nil {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	if err := m.WriteText(&sb); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

// TestCountersAndGauges: totals accumulate, negative adds are ignored
// (monotonic guarantee), gauges keep the last value.
func TestCountersAndGauges(t *testing.T) {
	m := New("t")
	c := m.Counter("items")
	c.Add(3)
	c.Add(4)
	c.Add(-10)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if m.Counter("items") != c {
		t.Error("Counter does not memoize by name")
	}
	g := m.Gauge("depth")
	g.Set(4)
	g.Set(2)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

// TestSpanTree: parent/child structure, durations, item counts, and
// idempotent End survive the snapshot round trip.
func TestSpanTree(t *testing.T) {
	m := New("t")
	root := m.StartSpan("read")
	split := root.Start("split")
	split.AddItems(10)
	split.AddBytes(100)
	time.Sleep(time.Millisecond)
	split.End()
	firstDur := split.elapsed()
	time.Sleep(time.Millisecond)
	split.End() // second End must not extend the duration
	if d := split.elapsed(); d != firstDur {
		t.Errorf("second End changed duration: %d -> %d", firstDur, d)
	}
	parse := root.Start("parse")
	parse.AddItems(10)
	parse.End()
	root.End()

	snap := m.Snapshot()
	rs := snap.Find("read")
	if rs == nil || len(rs.Children) != 2 {
		t.Fatalf("read span = %+v, want 2 children", rs)
	}
	ss := snap.Find("split")
	if ss == nil || ss.Items != 10 || ss.Bytes != 100 {
		t.Fatalf("split span = %+v", ss)
	}
	if ss.DurNS <= 0 || rs.DurNS < ss.DurNS {
		t.Errorf("durations: read %d, split %d", rs.DurNS, ss.DurNS)
	}
	if snap.Find("no-such-span") != nil {
		t.Error("Find invented a span")
	}
}

// TestPoolUtilization: busy time credited through Begin/End shows up
// per worker and in the utilization ratio.
func TestPoolUtilization(t *testing.T) {
	m := New("t")
	p := m.Pool("parse")
	w0, w1 := p.Worker(0), p.Worker(1)
	t0 := w0.Begin()
	time.Sleep(2 * time.Millisecond)
	w0.End(t0, 5, 50)
	t1 := w1.Begin()
	time.Sleep(time.Millisecond)
	w1.End(t1, 3, 0)

	snap := m.Snapshot()
	if len(snap.Pools) != 1 {
		t.Fatalf("pools = %+v", snap.Pools)
	}
	ps := snap.Pools[0]
	if ps.Name != "parse" || ps.Workers != 2 || len(ps.BusyNS) != 2 {
		t.Fatalf("pool snapshot = %+v", ps)
	}
	if ps.Items != 8 || ps.Bytes != 50 {
		t.Errorf("pool totals = %d items %d bytes, want 8/50", ps.Items, ps.Bytes)
	}
	if ps.BusyNS[0] <= ps.BusyNS[1] || ps.BusyNS[1] <= 0 {
		t.Errorf("busy = %v, want w0 > w1 > 0", ps.BusyNS)
	}
	if ps.Utilization <= 0 {
		t.Errorf("utilization = %v", ps.Utilization)
	}
}

// TestExporters: the JSON export parses back into the same structure
// and the text export mentions every instrument.
func TestExporters(t *testing.T) {
	m := New("pdbdemo")
	sp := m.StartSpan("merge")
	sp.AddItems(4)
	sp.End()
	m.Counter("files.loaded").Add(12)
	m.Gauge("workers").Set(8)
	p := m.Pool("merge")
	w := p.Worker(0)
	w.End(w.Begin(), 4, 0)

	var jb bytes.Buffer
	if err := m.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(jb.Bytes(), &snap); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, jb.String())
	}
	if snap.Tool != "pdbdemo" || snap.Counters["files.loaded"] != 12 ||
		snap.Gauges["workers"] != 8 || snap.Find("merge") == nil {
		t.Errorf("round-tripped snapshot = %+v", snap)
	}

	var tb bytes.Buffer
	if err := m.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	text := tb.String()
	for _, want := range []string{"pdbdemo", "merge", "files.loaded", "workers", "pool merge"} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
}
