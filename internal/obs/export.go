package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSON exports a snapshot of the registry as indented JSON, the
// machine side of the -metrics flag. A nil registry writes the empty
// snapshot so callers need not special-case the disabled path.
func (m *Metrics) WriteJSON(w io.Writer) error {
	snap := m.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteText exports a human-readable snapshot: the span tree with
// durations and item/byte totals, then the counters, gauges, and
// worker pools. It is the display behind the -trace flag, in the
// spirit of the paper's Figure 7 text profile.
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	if snap.Tool != "" {
		fmt.Fprintf(w, "%s: wall %s\n", snap.Tool, fmtNS(snap.WallNS))
	}
	for _, s := range snap.Spans {
		writeSpanText(w, s, 1)
	}
	for _, k := range sortedKeys(snap.Counters) {
		fmt.Fprintf(w, "  counter %-24s %d\n", k, snap.Counters[k])
	}
	for _, k := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(w, "  gauge   %-24s %d\n", k, snap.Gauges[k])
	}
	for _, p := range snap.Pools {
		fmt.Fprintf(w, "  pool %s: %d workers, %.0f%% utilization, %d items",
			p.Name, p.Workers, 100*p.Utilization, p.Items)
		if p.Bytes > 0 {
			fmt.Fprintf(w, ", %d bytes", p.Bytes)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func writeSpanText(w io.Writer, s SpanSnapshot, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%-*s %10s", 28-2*depth, s.Name, fmtNS(s.DurNS))
	if s.Items > 0 {
		fmt.Fprintf(w, "  %d items", s.Items)
	}
	if s.Bytes > 0 {
		fmt.Fprintf(w, "  %d bytes", s.Bytes)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		writeSpanText(w, c, depth+1)
	}
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
