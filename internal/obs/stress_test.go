package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentStress hammers every instrument from GOMAXPROCS writer
// goroutines while a reader continuously exports snapshots, under the
// race detector in CI. Each snapshot's totals must be monotonically
// non-decreasing — the atomic-read guarantee the exporter documents —
// and the final snapshot must account for every recorded event.
func TestConcurrentStress(t *testing.T) {
	m := New("stress")
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 2000

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := m.Counter("events")
			g := m.Gauge("last")
			p := m.Pool("stress")
			w := p.Worker(id)
			for n := 0; n < perWriter; n++ {
				c.Add(1)
				g.Set(int64(n))
				sp := m.StartSpan("stage")
				child := sp.Start("inner")
				child.AddItems(1)
				child.AddBytes(2)
				child.End()
				sp.AddItems(1)
				sp.End()
				t0 := w.Begin()
				w.End(t0, 1, 1)
			}
		}(i)
	}

	// The reader races the writers on purpose: snapshots taken mid-run
	// must never observe a counter, span-item, or pool total going
	// backwards.
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		var lastEvents, lastItems, lastPool int64
		// Check stop only after each snapshot: on a single-CPU box the
		// reader may first run after the writers already finished, and
		// it must still observe the final state at least once.
		for done := false; !done; done = stop.Load() {
			snap := m.Snapshot()
			events := snap.Counters["events"]
			if events < lastEvents {
				t.Errorf("counter went backwards: %d -> %d", lastEvents, events)
				return
			}
			lastEvents = events
			var items int64
			for _, s := range snap.Spans {
				items += s.Items
			}
			if items < lastItems {
				t.Errorf("span items went backwards: %d -> %d", lastItems, items)
				return
			}
			lastItems = items
			for _, p := range snap.Pools {
				if p.Items < lastPool {
					t.Errorf("pool items went backwards: %d -> %d", lastPool, p.Items)
					return
				}
				lastPool = p.Items
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-readerDone

	want := int64(writers * perWriter)
	final := m.Snapshot()
	if got := final.Counters["events"]; got != want {
		t.Errorf("final counter = %d, want %d", got, want)
	}
	if len(final.Spans) != int(want) {
		t.Errorf("final span count = %d, want %d", len(final.Spans), want)
	}
	pool := final.Pools[0]
	if pool.Items != want || pool.Workers != writers {
		t.Errorf("final pool = %d items %d workers, want %d/%d",
			pool.Items, pool.Workers, want, writers)
	}
	var busy int64
	for _, b := range pool.BusyNS {
		busy += b
	}
	if busy <= 0 {
		t.Error("no busy time recorded")
	}
}
