package corpus

import (
	"fmt"
	"io"

	"pdt/internal/tools/html"
	"pdt/internal/tools/tree"
)

// TreeRequest selects which trees WriteTree prints. The zero value
// (nothing selected) means all three, matching pdbtree's flag
// semantics.
type TreeRequest struct {
	Files   bool // -files: file inclusion tree
	Classes bool // -classes: class hierarchy
	Calls   bool // -calls: static call graph
}

// WriteTree renders the selected trees exactly as pdbtree prints them
// — headers, ordering, and blank lines included — so the pdbd /v1/tree
// endpoint and the CLI produce identical bytes.
func (c *Corpus) WriteTree(w io.Writer, req TreeRequest) error {
	all := !req.Files && !req.Classes && !req.Calls
	if all || req.Files {
		if _, err := fmt.Fprintln(w, "=== file inclusion tree ==="); err != nil {
			return err
		}
		tree.PrintFileTree(w, c.db)
	}
	if all || req.Classes {
		if _, err := fmt.Fprintln(w, "=== class hierarchy ==="); err != nil {
			return err
		}
		tree.PrintClassHierarchy(w, c.db)
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if all || req.Calls {
		if _, err := fmt.Fprintln(w, "=== static call graph ==="); err != nil {
			return err
		}
		tree.PrintCallGraph(w, c.db)
	}
	return nil
}

// htmlLoader resolves the corpus's source loader: the disk loader when
// source listings are wanted, nil otherwise.
func htmlLoader(withSource bool) html.SourceLoader {
	if withSource {
		return html.DiskLoader
	}
	return nil
}

// HTMLPageNames lists every page of the documentation site, in
// generation order.
func (c *Corpus) HTMLPageNames(withSource bool) []string {
	return html.PageNames(c.db, htmlLoader(withSource))
}

// HTMLPage renders one named documentation page, byte-identical to the
// file pdbhtml writes under the same name; unknown names return
// ErrNotFound.
func (c *Corpus) HTMLPage(name string, withSource bool) ([]byte, error) {
	content, ok := html.Page(c.db, name, htmlLoader(withSource))
	if !ok {
		return nil, fmt.Errorf("%w: no page %q", ErrNotFound, name)
	}
	return content, nil
}

// GenerateHTML writes the whole documentation site into dir, exactly
// as pdbhtml does.
func (c *Corpus) GenerateHTML(dir string, withSource bool) error {
	return html.Generate(c.db, dir, htmlLoader(withSource))
}
