package corpus

import (
	"context"
	"fmt"
	"io"

	"pdt/internal/analysis"
	"pdt/internal/durable"
)

// LintRequest selects and configures one analysis run over the corpus.
type LintRequest struct {
	// Passes names the passes to run (empty = all), as -passes does.
	Passes []string
	// TemplateBloat overrides the template-bloat threshold (<= 0 keeps
	// the pass default), as -template-bloat does.
	TemplateBloat int
	// Serial forces the passes to run one at a time, as -serial does.
	Serial bool
	// FindingsDB switches the run incremental against this findings
	// cache directory, as -findings-db does.
	FindingsDB string
	// Changed names the files a diff touched, as -changed does. It
	// shapes the affected-set report of an incremental run, never
	// correctness.
	Changed []string
}

// LintResult carries the findings of one run plus the incremental
// accounting when a findings DB was used.
type LintResult struct {
	Diags       []analysis.Diagnostic
	Incremental *analysis.IncrementalResult // nil for a full run
}

// Lint runs the analysis passes over the corpus — incrementally,
// splicing cached findings from the FindingsDB journal, when one is
// configured. The report is byte-identical either way.
func (c *Corpus) Lint(ctx context.Context, req LintRequest) (*LintResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	passes, err := analysis.Select(req.Passes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.TemplateBloat > 0 {
		for _, p := range passes {
			if tb, ok := p.(*analysis.TemplateBloatPass); ok {
				tb.Threshold = req.TemplateBloat
			}
		}
	}
	opts := analysis.Options{Metrics: c.opts.Metrics}
	if req.Serial {
		opts.Workers = 1
	}
	res := &LintResult{}
	if req.FindingsDB != "" {
		journal, jerr := durable.OpenJournal(durable.OS, req.FindingsDB)
		if jerr != nil {
			return nil, fmt.Errorf("findings db: %w", jerr)
		}
		g, gerr := c.Graph(ctx)
		if gerr != nil {
			return nil, gerr
		}
		r, rerr := analysis.RunIncremental(c.db, passes, analysis.IncrementalOptions{
			Options: opts,
			Journal: journal,
			Graph:   g,
			Changed: req.Changed,
		})
		if rerr != nil {
			return nil, rerr
		}
		res.Diags = r.Diags
		res.Incremental = r
	} else {
		res.Diags = analysis.Run(c.db, passes, opts)
	}
	return res, nil
}

// ExitCode folds the findings severities into the pdblint exit code.
func (r *LintResult) ExitCode() int { return analysis.ExitCode(r.Diags) }

// Write renders the findings report in the requested format ("text" or
// "json") — the renderer both pdblint and the pdbd /v1/lint endpoint
// use.
func (r *LintResult) Write(w io.Writer, format string) error {
	if format == "json" {
		return analysis.WriteJSON(w, r.Diags)
	}
	return analysis.WriteText(w, r.Diags)
}
