package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"pdt/internal/query"
	"pdt/internal/schema"
)

// Request-classification errors. The CLI folds both into its usage
// exit code; the daemon maps ErrNotFound to HTTP 404 and ErrBadRequest
// to HTTP 400.
var (
	// ErrBadRequest marks a malformed request: unknown command, wrong
	// argument count, ambiguous endpoint node.
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound marks a well-formed request naming something that
	// does not exist (no node matches the spec, unknown HTML page).
	ErrNotFound = errors.New("not found")
)

// Query commands, exactly the pdbquery CLI command set.
const (
	CmdNodes      = "nodes"
	CmdLookup     = "lookup"
	CmdDeps       = "deps"
	CmdRevDeps    = "revdeps"
	CmdSomePath   = "somepath"
	CmdReaches    = "reaches"
	CmdWhatInputs = "whatinputs"
	CmdAffected   = "affected"
)

// ExitNoPath is the query-specific finding exit code: a somepath or
// reaches query completed but found no connection.
const ExitNoPath = 1

// QueryRequest is one graph query: a command, its arguments (node
// specs for most commands, file names for whatinputs/affected, a
// from/to pair for somepath/reaches), and the traversal depth bound
// for deps/revdeps (0 = unbounded).
type QueryRequest struct {
	Command string
	Args    []string
	Depth   int
}

// QueryResult is the outcome of one graph query, holding exactly one
// of the result shapes plus everything the renderers need.
type QueryResult struct {
	Command string

	Nodes    []*query.Node      // nodes, lookup, deps, revdeps, whatinputs
	Path     []query.Edge       // somepath (nil = no path)
	HasPath  bool               // somepath, reaches
	Affected *query.AffectedSet // affected
}

// Query runs one graph query against the corpus. The graph is built
// on first use, honoring ctx. Malformed requests return ErrBadRequest;
// specs that match nothing return ErrNotFound.
func (c *Corpus) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	g, err := c.Graph(ctx)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Command: req.Command}
	switch req.Command {
	case CmdNodes:
		if len(req.Args) != 0 {
			return nil, fmt.Errorf("%w: nodes takes no arguments", ErrBadRequest)
		}
		res.Nodes = g.Nodes()
	case CmdLookup:
		nodes, err := resolveAll(g, req.Args)
		if err != nil {
			return nil, err
		}
		res.Nodes = nodes
	case CmdDeps, CmdRevDeps:
		nodes, err := resolveAll(g, req.Args)
		if err != nil {
			return nil, err
		}
		if req.Command == CmdDeps {
			res.Nodes = g.Deps(nodes, req.Depth)
		} else {
			res.Nodes = g.RevDeps(nodes, req.Depth)
		}
	case CmdWhatInputs:
		nodes, err := resolveFiles(g, req.Args)
		if err != nil {
			return nil, err
		}
		res.Nodes = g.WhatInputs(nodes)
	case CmdSomePath, CmdReaches:
		if len(req.Args) != 2 {
			return nil, fmt.Errorf("%w: %s takes exactly a from and a to node", ErrBadRequest, req.Command)
		}
		from, err := resolveOne(g, req.Args[0])
		if err != nil {
			return nil, err
		}
		to, err := resolveOne(g, req.Args[1])
		if err != nil {
			return nil, err
		}
		res.Path = g.SomePath(from, to)
		res.HasPath = res.Path != nil
	case CmdAffected:
		if len(req.Args) == 0 {
			return nil, fmt.Errorf("%w: affected takes at least one changed file", ErrBadRequest)
		}
		res.Affected = g.Affected(req.Args)
		c.opts.Metrics.Counter("query.affected_units").Add(int64(len(res.Affected.Units())))
	default:
		return nil, fmt.Errorf("%w: unknown command %q", ErrBadRequest, req.Command)
	}
	return res, nil
}

// ExitCode returns the CLI exit code the result implies: ExitNoPath
// when a somepath/reaches query found no connection, 0 otherwise.
func (r *QueryResult) ExitCode() int {
	if (r.Command == CmdSomePath || r.Command == CmdReaches) && !r.HasPath {
		return ExitNoPath
	}
	return 0
}

// Write renders the result in the requested format ("text" or "json").
// This is THE renderer: the pdbquery CLI and the pdbd /v1/query
// endpoints both call it, so their bytes agree by construction.
func (r *QueryResult) Write(w io.Writer, format string) error {
	switch r.Command {
	case CmdSomePath:
		return writePath(w, format, r.Path)
	case CmdReaches:
		return writeBool(w, format, r.HasPath)
	case CmdAffected:
		return writeAffected(w, format, r.Affected)
	default:
		return writeNodes(w, format, r.Nodes)
	}
}

// resolveAll resolves every spec, requiring at least one node each;
// ambiguous specs contribute all their matches.
func resolveAll(g *query.Graph, specs []string) ([]*query.Node, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: at least one node is required", ErrBadRequest)
	}
	var out []*query.Node
	for _, spec := range specs {
		ns := g.Lookup(spec)
		if len(ns) == 0 {
			return nil, fmt.Errorf("%w: no node matches %q", ErrNotFound, spec)
		}
		out = append(out, ns...)
	}
	return out, nil
}

// resolveFiles is resolveAll restricted to file nodes.
func resolveFiles(g *query.Graph, specs []string) ([]*query.Node, error) {
	nodes, err := resolveAll(g, specs)
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		if n.Kind != query.KindFile {
			return nil, fmt.Errorf("%w: whatinputs takes files, %q is a %s", ErrBadRequest, n.Name, n.Kind)
		}
	}
	return nodes, nil
}

// resolveOne resolves a spec that must name exactly one node.
func resolveOne(g *query.Graph, spec string) (*query.Node, error) {
	ns := g.Lookup(spec)
	switch len(ns) {
	case 1:
		return ns[0], nil
	case 0:
		return nil, fmt.Errorf("%w: no node matches %q", ErrNotFound, spec)
	default:
		keys := make([]string, 0, len(ns))
		for _, n := range ns {
			keys = append(keys, n.Key())
		}
		return nil, fmt.Errorf("%w: %q is ambiguous: %s", ErrBadRequest, spec, strings.Join(keys, ", "))
	}
}

// --- renderers --------------------------------------------------------------

type nodeJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func marshalNodes(ns []*query.Node) []nodeJSON {
	out := make([]nodeJSON, 0, len(ns))
	for _, n := range ns {
		out = append(out, nodeJSON{Kind: string(n.Kind), Name: n.Name})
	}
	return out
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeNodes(w io.Writer, format string, ns []*query.Node) error {
	if format == "json" {
		return writeJSON(w, struct {
			SchemaVersion int        `json:"schema_version"`
			Nodes         []nodeJSON `json:"nodes"`
		}{schema.Version, marshalNodes(ns)})
	}
	for _, n := range ns {
		if _, err := fmt.Fprintln(w, n.Key()); err != nil {
			return err
		}
	}
	return nil
}

func writeBool(w io.Writer, format string, v bool) error {
	if format == "json" {
		return writeJSON(w, struct {
			SchemaVersion int  `json:"schema_version"`
			Reaches       bool `json:"reaches"`
		}{schema.Version, v})
	}
	_, err := fmt.Fprintln(w, v)
	return err
}

func writePath(w io.Writer, format string, path []query.Edge) error {
	if format == "json" {
		p := path
		if p == nil {
			p = []query.Edge{}
		}
		return writeJSON(w, struct {
			SchemaVersion int          `json:"schema_version"`
			Found         bool         `json:"found"`
			Path          []query.Edge `json:"path"`
		}{schema.Version, path != nil, p})
	}
	if path == nil {
		_, err := fmt.Fprintln(w, "no path")
		return err
	}
	for i, e := range path {
		if i == 0 {
			if _, err := fmt.Fprintln(w, e.From); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  -%s-> %s\n", e.Kind, e.To); err != nil {
			return err
		}
	}
	return nil
}

func writeAffected(w io.Writer, format string, set *query.AffectedSet) error {
	if format == "json" {
		units := set.Units()
		if units == nil {
			units = []string{}
		}
		return writeJSON(w, struct {
			SchemaVersion int        `json:"schema_version"`
			Units         []string   `json:"units"`
			Nodes         []nodeJSON `json:"nodes"`
		}{schema.Version, units, marshalNodes(set.Nodes())})
	}
	for _, n := range set.Nodes() {
		if _, err := fmt.Fprintln(w, n.Key()); err != nil {
			return err
		}
	}
	return nil
}
