// Package corpus is the shared front door to a loaded program-database
// corpus: one Open call loads (and, for several inputs, merges) the
// databases through the pdbio engine, and the resulting Corpus answers
// the questions every consumer asks — graph queries, lint findings,
// hierarchy trees, HTML pages, content fingerprints — through one API.
//
// The CLIs (pdbquery, pdblint, pdbtree, pdbhtml) and the pdbd daemon
// are both thin shells over this package, so a daemon endpoint and the
// corresponding command-line invocation produce byte-identical output
// by construction: they call the same methods and the same renderers.
//
// Options maps 1:1 onto the shared CLI flags (cliutil) and onto the
// pdbd configuration, so "the same corpus, opened the same way" means
// the same Options value on either side.
package corpus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
	"pdt/internal/query"
)

// Options configures Open. The zero value is a plain strict load with
// one worker per CPU and no instrumentation. Every field corresponds
// to exactly one shared CLI flag (noted per field) and one pdbd config
// knob.
type Options struct {
	Workers       int           // -j / -workers
	Strict        bool          // -strict (referential integrity validation)
	Lenient       bool          // -lenient
	Quarantine    string        // -quarantine
	Retries       int           // -retry
	RetryBackoff  time.Duration // -retry-backoff
	CheckpointDir string        // -checkpoint-dir (merge journal reuse)
	Resume        bool          // -resume

	// Metrics receives stage spans and counters for the load and every
	// later derived-view build. Nil disables instrumentation.
	Metrics *obs.Metrics
	// Stats accumulates resilience counters shared with the caller's
	// exit-code logic (cliutil.Resilience). Optional.
	Stats *pdbio.Stats
}

// pdbioOptions translates the option set for the pdbio engine.
func (o Options) pdbioOptions() []pdbio.Option {
	opts := []pdbio.Option{
		pdbio.WithWorkers(o.Workers),
		pdbio.WithMetrics(o.Metrics),
	}
	if o.Strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	if o.Lenient {
		opts = append(opts, pdbio.WithLenient())
	}
	if o.Quarantine != "" {
		opts = append(opts, pdbio.WithQuarantine(o.Quarantine))
	}
	if o.Retries > 0 {
		opts = append(opts, pdbio.WithRetry(o.Retries, o.RetryBackoff))
	}
	if o.CheckpointDir != "" {
		opts = append(opts, pdbio.WithCheckpoint(o.CheckpointDir, o.Resume))
	}
	if o.Stats != nil {
		opts = append(opts, pdbio.WithStats(o.Stats))
	}
	return opts
}

// Corpus is one loaded (and merged) program database plus its lazily
// built derived views: the dependency graph, the per-unit content
// fingerprints, and the corpus-wide fingerprint digest. A Corpus is
// immutable once opened and safe for concurrent use; reloading means
// opening a new Corpus and swapping the pointer.
type Corpus struct {
	paths []string
	opts  Options
	db    *ductape.PDB

	mu    sync.Mutex
	graph *query.Graph

	fpOnce      sync.Once
	fps         *query.Fingerprints
	fingerprint string
}

// Open loads the databases at paths and merges them into one Corpus.
// A single path is a plain load; several paths run the pdbio tree
// merge (reusing the CheckpointDir journal when configured), so the
// result is byte-identical to pdbmerge over the same inputs.
func Open(ctx context.Context, paths []string, opts Options) (*Corpus, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no input paths")
	}
	io := opts.pdbioOptions()
	var db *ductape.PDB
	var err error
	if len(paths) == 1 {
		db, err = pdbio.Load(ctx, paths[0], io...)
	} else {
		var dbs []*ductape.PDB
		dbs, err = pdbio.LoadAll(ctx, paths, io...)
		if err == nil {
			db, err = pdbio.Merge(ctx, dbs, io...)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Corpus{paths: append([]string(nil), paths...), opts: opts, db: db}, nil
}

// FromDB wraps an already built database in a Corpus — the seam for
// tests and in-process embedders that compile their corpus directly.
func FromDB(db *ductape.PDB, opts Options) *Corpus {
	return &Corpus{opts: opts, db: db}
}

// DB returns the underlying merged database.
func (c *Corpus) DB() *ductape.PDB { return c.db }

// Paths returns the input paths the corpus was opened from (nil for
// FromDB corpora).
func (c *Corpus) Paths() []string { return c.paths }

// Graph returns the dependency graph, building it on first use. The
// build honors ctx: a canceled caller gets ctx.Err() and leaves the
// graph unbuilt, so the next caller retries — a disconnected client
// never leaves a half-built graph behind, and never leaves the build
// running.
func (c *Corpus) Graph(ctx context.Context) (*query.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.graph != nil {
		return c.graph, nil
	}
	sp := c.opts.Metrics.StartSpan("graph.build")
	g, err := query.NewContext(ctx, c.db)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.AddItems(int64(g.Len()))
	sp.End()
	c.opts.Metrics.Counter("query.nodes").Add(int64(g.Len()))
	c.opts.Metrics.Counter("query.edges").Add(int64(g.EdgeCount()))
	c.graph = g
	return g, nil
}

// Fingerprints returns the per-unit, per-section content fingerprints,
// computing them on first use.
func (c *Corpus) Fingerprints() *query.Fingerprints {
	c.fpOnce.Do(func() {
		sp := c.opts.Metrics.StartSpan("fingerprint")
		c.fps = query.Fingerprint(c.db)
		sp.AddItems(int64(len(c.fps.Units())))
		sp.End()

		parts := []string{"pdt-corpus-fingerprint v1"}
		for _, unit := range c.fps.Units() {
			secs := c.fps.Unit(unit)
			parts = append(parts, unit)
			for _, sec := range query.Sections() {
				if d, ok := secs[sec]; ok {
					parts = append(parts, string(sec), d)
				}
			}
		}
		c.fingerprint = durable.KeyOf(parts...)
	})
	return c.fps
}

// Fingerprint returns the corpus-wide content digest: a single
// content-addressed key over every unit's section fingerprints.
// Two corpora with identical content fingerprint identically however
// they were produced (merge order, item numbering); any content change
// changes the digest. It is the cache epoch the pdbd result cache keys
// responses under.
func (c *Corpus) Fingerprint() string {
	c.Fingerprints()
	return c.fingerprint
}
