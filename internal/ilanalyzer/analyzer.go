// Package ilanalyzer implements the IL Analyzer of the paper's §3.1: it
// walks the IL tree produced by the frontend and emits a program
// database (internal/pdb). Mirroring the paper, it performs *separate
// traversals* for source files, templates, routines, classes, types,
// namespaces, and macros, and it determines the template an
// instantiation came from by scanning a pre-built template list and
// matching source locations — because the IL records that an entity
// *is* an instantiation, not which template produced it.
//
// The paper notes the location scan cannot attribute explicit
// specializations to their templates ("it is currently not possible to
// determine the originating template for a specialization") and
// proposes a front-end modification adding direct template IDs. Both
// behaviours are implemented: OriginScan (default, paper-faithful) and
// OriginDirect (the proposed modification) — compared in the D2
// ablation benchmark.
package ilanalyzer

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/pp"
	"pdt/internal/il"
	"pdt/internal/pdb"
	"pdt/internal/source"
)

// OriginMode selects how instantiations are linked to templates.
type OriginMode int

const (
	// OriginScan matches instantiations to templates by scanning the
	// template list for a definition span containing the
	// instantiation's location (the paper's implementation).
	OriginScan OriginMode = iota
	// OriginDirect follows the IL's direct back-pointers (the paper's
	// proposed EDG modification).
	OriginDirect
)

// Options configure the analyzer.
type Options struct {
	TemplateOrigin OriginMode
}

// Analyzer converts one IL unit into a PDB.
type Analyzer struct {
	unit *il.Unit
	opts Options
	out  *pdb.PDB

	fileIDs      map[*source.File]int
	templateIDs  map[*il.Template]int
	routineIDs   map[*il.Routine]int
	classIDs     map[*il.Class]int
	namespaceIDs map[*il.Namespace]int

	// templateSpans is the pre-built template list for the location
	// scan: (template, definition span).
	templateSpans []templateSpan
}

type templateSpan struct {
	t    *il.Template
	span source.Span
}

// New returns an analyzer for the unit.
func New(unit *il.Unit, opts Options) *Analyzer {
	return &Analyzer{
		unit: unit, opts: opts, out: &pdb.PDB{},
		fileIDs:      map[*source.File]int{},
		templateIDs:  map[*il.Template]int{},
		routineIDs:   map[*il.Routine]int{},
		classIDs:     map[*il.Class]int{},
		namespaceIDs: map[*il.Namespace]int{},
	}
}

// Analyze runs every traversal and returns the PDB.
func Analyze(unit *il.Unit, opts Options) *pdb.PDB {
	a := New(unit, opts)
	a.assignIDs()
	a.buildTemplateList()
	a.emitFiles()
	a.emitTemplates()
	a.emitRoutines()
	a.emitClasses()
	a.emitTypes()
	a.emitNamespaces()
	a.emitMacros()
	return a.out
}

// assignIDs gives every emitted entity a stable PDB ID in traversal
// order.
func (a *Analyzer) assignIDs() {
	for i, f := range a.unit.Files {
		a.fileIDs[f] = i + 1
	}
	for i, t := range a.unit.AllTemplates {
		a.templateIDs[t] = i + 1
	}
	for i, r := range a.unit.AllRoutines {
		a.routineIDs[r] = i + 1
	}
	for i, c := range a.unit.AllClasses {
		a.classIDs[c] = i + 1
	}
	id := 1
	var walk func(ns *il.Namespace)
	walk = func(ns *il.Namespace) {
		if ns.Parent != nil { // skip the global namespace
			a.namespaceIDs[ns] = id
			id++
		}
		for _, sub := range ns.Namespaces {
			walk(sub)
		}
	}
	walk(a.unit.Global)
}

// buildTemplateList prepares the scan table: the paper's "list of
// templates [created] in advance". Spans come from the unit's
// supplemental location table — deliberately not from the template
// node itself (§3.1).
func (a *Analyzer) buildTemplateList() {
	for _, t := range a.unit.AllTemplates {
		span, ok := a.unit.SuppLocs[t]
		if !ok {
			span = source.Span{Begin: t.Header.Begin, End: t.Body.End}
		}
		a.templateSpans = append(a.templateSpans, templateSpan{t: t, span: span})
	}
}

// scanForTemplate finds the template whose definition span contains
// loc. This reproduces the paper's matching: instantiations carry their
// template's source location, so containment identifies the origin;
// specializations live outside any template's span and find nothing.
func (a *Analyzer) scanForTemplate(loc source.Loc) *il.Template {
	var best *il.Template
	bestSize := 1 << 30
	for _, ts := range a.templateSpans {
		if !ts.span.Valid() || loc.File != ts.span.Begin.File {
			continue
		}
		if loc.Line < ts.span.Begin.Line || (ts.span.End.Valid() && loc.Line > ts.span.End.Line) {
			continue
		}
		// Member-function templates defined in-class nest inside the
		// class template's span; the narrowest containing span is the
		// correct origin (Figure 3: ro#7 push links to te#566 push,
		// not te#559 Stack).
		size := 1 << 29
		if ts.span.End.Valid() {
			size = ts.span.End.Line - ts.span.Begin.Line
		}
		if size < bestSize {
			bestSize = size
			best = ts.t
		}
	}
	return best
}

// originOf resolves the template reference for an instantiated entity
// under the configured mode.
func (a *Analyzer) originOf(direct *il.Template, loc source.Loc, isSpecialization bool) pdb.Ref {
	switch a.opts.TemplateOrigin {
	case OriginDirect:
		return a.templateRef(direct)
	default:
		if isSpecialization {
			// The paper-faithful scan cannot attribute specializations.
			return pdb.Ref{}
		}
		return a.templateRef(a.scanForTemplate(loc))
	}
}

// --- reference helpers ----------------------------------------------------

func (a *Analyzer) fileRef(f *source.File) pdb.Ref {
	if f == nil {
		return pdb.Ref{}
	}
	if id, ok := a.fileIDs[f]; ok {
		return pdb.Ref{Prefix: pdb.PrefixSourceFile, ID: id}
	}
	return pdb.Ref{}
}

func (a *Analyzer) loc(l source.Loc) pdb.Loc {
	if !l.Valid() {
		return pdb.Loc{}
	}
	return pdb.Loc{File: a.fileRef(l.File), Line: l.Line, Col: l.Col}
}

func (a *Analyzer) pos(header, body source.Span) pdb.Pos {
	return pdb.Pos{
		HeaderBegin: a.loc(header.Begin),
		HeaderEnd:   a.loc(header.End),
		BodyBegin:   a.loc(body.Begin),
		BodyEnd:     a.loc(body.End),
	}
}

func (a *Analyzer) templateRef(t *il.Template) pdb.Ref {
	if t == nil {
		return pdb.Ref{}
	}
	if id, ok := a.templateIDs[t]; ok {
		return pdb.Ref{Prefix: pdb.PrefixTemplate, ID: id}
	}
	return pdb.Ref{}
}

func (a *Analyzer) routineRef(r *il.Routine) pdb.Ref {
	if r == nil {
		return pdb.Ref{}
	}
	if id, ok := a.routineIDs[r]; ok {
		return pdb.Ref{Prefix: pdb.PrefixRoutine, ID: id}
	}
	return pdb.Ref{}
}

func (a *Analyzer) classRef(c *il.Class) pdb.Ref {
	if c == nil {
		return pdb.Ref{}
	}
	if id, ok := a.classIDs[c]; ok {
		return pdb.Ref{Prefix: pdb.PrefixClass, ID: id}
	}
	return pdb.Ref{}
}

func (a *Analyzer) namespaceRef(n *il.Namespace) pdb.Ref {
	if n == nil || n.Parent == nil {
		return pdb.Ref{}
	}
	if id, ok := a.namespaceIDs[n]; ok {
		return pdb.Ref{Prefix: pdb.PrefixNamespace, ID: id}
	}
	return pdb.Ref{}
}

func (a *Analyzer) typeRef(t *il.Type) pdb.Ref {
	if t == nil {
		return pdb.Ref{}
	}
	return pdb.Ref{Prefix: pdb.PrefixType, ID: t.ID}
}

// --- traversals -------------------------------------------------------------

func (a *Analyzer) emitFiles() {
	for _, f := range a.unit.Files {
		item := &pdb.SourceFile{ID: a.fileIDs[f], Name: f.Name, System: f.System}
		for _, inc := range f.Includes {
			item.Includes = append(item.Includes, a.fileRef(inc))
		}
		a.out.Files = append(a.out.Files, item)
	}
}

func (a *Analyzer) emitTemplates() {
	for _, t := range a.unit.AllTemplates {
		item := &pdb.Template{
			ID:   a.templateIDs[t],
			Name: t.Name,
			Loc:  a.loc(t.Loc),
			Kind: t.Kind.String(),
			Text: truncateTemplateText(t.Text),
			Pos:  a.pos(t.Header, t.Body),
		}
		switch p := t.Parent.(type) {
		case *il.Class:
			item.Class = a.classRef(p)
		case *il.Namespace:
			item.Namespace = a.namespaceRef(p)
		}
		if t.Access != ast.NoAccess {
			item.Access = t.Access.String()
		}
		a.out.Templates = append(a.out.Templates, item)
	}
}

// truncateTemplateText elides the body of a template's text, keeping
// the declaration head — matching the paper's Figure 3, which shows
// "ttext template <class Object> class Stack {...};".
func truncateTemplateText(text string) string {
	if i := strings.IndexByte(text, '{'); i >= 0 {
		return strings.TrimRight(text[:i], " \t") + " {...};"
	}
	return text
}

func (a *Analyzer) emitRoutines() {
	for _, r := range a.unit.AllRoutines {
		item := &pdb.Routine{
			ID:        a.routineIDs[r],
			Name:      r.Name,
			Loc:       a.loc(r.Loc),
			Class:     a.classRef(r.Class),
			Namespace: a.namespaceRef(r.Namespace),
			Access:    r.Access.String(),
			Signature: a.typeRef(r.Signature),
			Linkage:   r.Linkage,
			Storage:   r.Storage.String(),
			Kind:      routineKindString(r.Kind),
			Static:    r.Static,
			Inline:    r.Inline,
			Const:     r.Const,
		}
		switch {
		case r.PureVirtual:
			item.Virtual = "pure"
		case r.Virtual:
			item.Virtual = "virt"
		default:
			item.Virtual = "no"
		}
		if r.IsInstantiation {
			spec := r.Class != nil && r.Class.IsSpecialization
			item.Template = a.originOf(r.Origin, r.Loc, spec)
		}
		for _, cs := range r.Calls {
			item.Calls = append(item.Calls, pdb.Call{
				Callee:  a.routineRef(cs.Callee),
				Virtual: cs.Virtual,
				Loc:     a.loc(cs.Loc),
			})
		}
		if r.HasBody {
			item.Pos = a.pos(r.Header, r.BodySpan)
		} else {
			item.Pos = a.pos(r.Header, source.Span{})
		}
		a.out.Routines = append(a.out.Routines, item)
	}
}

func routineKindString(k ast.RoutineKind) string {
	switch k {
	case ast.Constructor:
		return "ctor"
	case ast.Destructor:
		return "dtor"
	case ast.Operator:
		return "op"
	case ast.Conversion:
		return "conv"
	default:
		return "fun"
	}
}

func (a *Analyzer) emitClasses() {
	for _, c := range a.unit.AllClasses {
		item := &pdb.Class{
			ID:             a.classIDs[c],
			Name:           c.Name,
			Loc:            a.loc(c.Loc),
			Kind:           c.Kind.String(),
			Instantiation:  c.IsInstantiation,
			Specialization: c.IsSpecialization,
			Pos:            a.pos(c.Header, c.Body),
		}
		switch p := c.Parent.(type) {
		case *il.Class:
			item.Parent = a.classRef(p)
		case *il.Namespace:
			item.Namespace = a.namespaceRef(p)
		}
		if c.Access != ast.NoAccess {
			item.Access = c.Access.String()
		}
		if c.IsInstantiation || c.IsSpecialization {
			item.Template = a.originOf(c.Origin, c.Loc, c.IsSpecialization)
		}
		for _, b := range c.Bases {
			item.Bases = append(item.Bases, pdb.BaseClass{
				Access:  b.Access.String(),
				Virtual: b.Virtual,
				Class:   a.classRef(b.Class),
				Loc:     a.loc(b.Loc),
			})
		}
		for _, f := range c.Friends {
			item.Friends = append(item.Friends, f.Name)
		}
		for _, m := range c.Methods {
			item.Funcs = append(item.Funcs, pdb.FuncRef{
				Routine: a.routineRef(m),
				Loc:     a.loc(m.Loc),
			})
		}
		for _, v := range c.Members {
			item.Members = append(item.Members, pdb.Member{
				Name:   v.Name,
				Loc:    a.loc(v.Loc),
				Access: v.Access.String(),
				Kind:   v.Kind,
				Type:   a.typeRef(v.Type),
				Static: v.Storage == ast.Static,
			})
		}
		a.out.Classes = append(a.out.Classes, item)
	}
}

func (a *Analyzer) emitTypes() {
	for _, t := range a.unit.Types.All() {
		if t.Kind == il.TError {
			continue
		}
		item := &pdb.Type{
			ID:   t.ID,
			Name: t.String(),
			Kind: t.Kind.String(),
		}
		if t.Kind.IsInteger() {
			item.IntKind = intKindOf(t.Kind)
		}
		switch t.Kind {
		case il.TPtr, il.TRef:
			item.Elem = a.typeRef(t.Elem)
		case il.TArray:
			item.Elem = a.typeRef(t.Elem)
			item.ArrayLen = t.ArrayLen
		case il.TTref:
			item.Tref = a.typeRef(t.Elem)
			if t.Const {
				item.Qual = append(item.Qual, "const")
			}
			if t.Volatile {
				item.Qual = append(item.Qual, "volatile")
			}
		case il.TClass:
			item.Class = a.classRef(t.Class)
		case il.TEnum:
			// Enums have no separate item type in Table 1; the type
			// item carries the name.
		case il.TFunc:
			item.Ret = a.typeRef(t.Ret)
			for _, p := range t.Params {
				item.Args = append(item.Args, a.typeRef(p))
			}
			item.Ellipsis = t.Variadic
			if t.ConstMethod {
				item.Qual = append(item.Qual, "const")
			}
		}
		a.out.Types = append(a.out.Types, item)
	}
}

// intKindOf maps integral kinds to the "yikind" attribute, which names
// the underlying integer representation (Figure 3 shows bool with
// "yikind char").
func intKindOf(k il.TypeKind) string {
	switch k {
	case il.TBool, il.TChar, il.TSChar, il.TUChar:
		return "char"
	case il.TShort, il.TUShort:
		return "short"
	case il.TInt, il.TUInt:
		return "int"
	case il.TLong, il.TULong:
		return "long"
	case il.TLongLong, il.TULongLong:
		return "llong"
	default:
		return ""
	}
}

func (a *Analyzer) emitNamespaces() {
	var walk func(ns *il.Namespace)
	walk = func(ns *il.Namespace) {
		if ns.Parent != nil {
			item := &pdb.Namespace{
				ID:      a.namespaceIDs[ns],
				Name:    ns.Name,
				Loc:     a.loc(ns.Loc),
				Parent:  a.namespaceRef(ns.Parent),
				Members: ns.MemberNames(),
			}
			a.out.Namespaces = append(a.out.Namespaces, item)
		}
		for name, target := range ns.Aliases {
			a.out.Namespaces = append(a.out.Namespaces, &pdb.Namespace{
				ID:    len(a.namespaceIDs) + len(a.out.Namespaces) + 1,
				Name:  name,
				Alias: target.QualifiedName(),
			})
		}
		for _, sub := range ns.Namespaces {
			walk(sub)
		}
	}
	walk(a.unit.Global)
}

func (a *Analyzer) emitMacros() {
	id := 1
	for _, rec := range a.unit.Macros {
		if rec.Loc.File == nil || len(rec.Loc.File.Name) == 0 || rec.Loc.File.Name[0] == '<' {
			continue // predefined/builtin macros are not user items
		}
		kind := "def"
		if rec.Kind == pp.Undef {
			kind = "undef"
		}
		a.out.Macros = append(a.out.Macros, &pdb.Macro{
			ID:   id,
			Name: rec.Name,
			Loc:  a.loc(rec.Loc),
			Kind: kind,
			Text: rec.Text,
		})
		id++
	}
}
