package ilanalyzer_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ilanalyzer"
	"pdt/internal/pdb"
)

// buildPDB compiles src (with extra files) and analyzes the IL.
func buildPDB(t *testing.T, src string, extra map[string]string, opts ilanalyzer.Options) *pdb.PDB {
	t.Helper()
	copts := core.Options{}
	fs := core.NewFileSet(copts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "main.cpp", src, copts)
	for _, d := range res.Diagnostics {
		t.Errorf("diagnostic: %v", d)
	}
	return ilanalyzer.Analyze(res.Unit, opts)
}

func findPDBClass(t *testing.T, p *pdb.PDB, name string) *pdb.Class {
	t.Helper()
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	var names []string
	for _, c := range p.Classes {
		names = append(names, c.Name)
	}
	t.Fatalf("class %q not in PDB; have %v", name, names)
	return nil
}

func findPDBRoutine(t *testing.T, p *pdb.PDB, name string, classID int) *pdb.Routine {
	t.Helper()
	for _, r := range p.Routines {
		if r.Name == name && (classID == 0 || r.Class.ID == classID) {
			return r
		}
	}
	t.Fatalf("routine %q (class %d) not in PDB", name, classID)
	return nil
}

func findPDBTemplate(t *testing.T, p *pdb.PDB, name, kind string) *pdb.Template {
	t.Helper()
	for _, te := range p.Templates {
		if te.Name == name && te.Kind == kind {
			return te
		}
	}
	t.Fatalf("template %q kind %q not in PDB", name, kind)
	return nil
}

const stackSource = `
#include "StackAr.h"
int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        s.topAndPop();
    return 0;
}
`

const stackHeader = `#ifndef STACK_AR_H
#define STACK_AR_H
#include <vector>
class Overflow { };
class Underflow { };

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    bool isFull() const;
    void push(const Object & x);
    Object topAndPop();
private:
    vector<Object> theArray;
    int topOfStack;
};
#include "StackAr.cpp"
#endif
`

const stackImpl = `template <class Object>
Stack<Object>::Stack(int capacity) : theArray(capacity), topOfStack(-1) { }

template <class Object>
bool Stack<Object>::isEmpty() const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == theArray.size() - 1;
}

template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}

template <class Object>
Object Stack<Object>::topAndPop() {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack--);
}
`

func stackFiles() map[string]string {
	return map[string]string{"StackAr.h": stackHeader, "StackAr.cpp": stackImpl}
}

// TestStackPDB is experiment E3: the PDB for the paper's Figure 1/3
// Stack program contains the same structure the paper shows.
func TestStackPDB(t *testing.T) {
	p := buildPDB(t, stackSource, stackFiles(), ilanalyzer.Options{})

	// (2)/(5): the header "includes" the implementation file, so that
	// templates are instantiated in the PDB file.
	var hdr *pdb.SourceFile
	for _, f := range p.Files {
		if f.Name == "StackAr.h" {
			hdr = f
		}
	}
	if hdr == nil {
		t.Fatal("StackAr.h not in PDB")
	}
	foundImpl := false
	for _, inc := range hdr.Includes {
		if f := p.FileByID(inc.ID); f != nil && f.Name == "StackAr.cpp" {
			foundImpl = true
		}
	}
	if !foundImpl {
		t.Error("StackAr.h should include StackAr.cpp (sinc)")
	}

	// (7): class template Stack with tkind class and its text.
	stackT := findPDBTemplate(t, p, "Stack", "class")
	if !strings.Contains(stackT.Text, "template <class Object>") {
		t.Errorf("ttext = %q", stackT.Text)
	}
	// (8): member function template push with tkind memfunc located in
	// the implementation file.
	pushT := findPDBTemplate(t, p, "push", "memfunc")
	if f := p.FileByID(pushT.Loc.File.ID); f == nil || f.Name != "StackAr.cpp" {
		t.Errorf("push template located in %+v", pushT.Loc)
	}

	// (12): Stack<int> instantiates te(Stack); members and attributes.
	cl := findPDBClass(t, p, "Stack<int>")
	if !cl.Instantiation || cl.Template.ID != stackT.ID {
		t.Errorf("Stack<int>: inst=%v ctempl=%v (want te#%d)", cl.Instantiation, cl.Template, stackT.ID)
	}
	if len(cl.Members) != 2 || cl.Members[0].Name != "theArray" || cl.Members[1].Name != "topOfStack" {
		t.Fatalf("members = %+v", cl.Members)
	}
	if cl.Members[0].Access != "priv" || cl.Members[0].Kind != "var" {
		t.Errorf("theArray attrs = %+v", cl.Members[0])
	}
	// theArray's type is the class vector<int>.
	tyArr := p.TypeByID(cl.Members[0].Type.ID)
	if tyArr == nil || tyArr.Kind != "class" || tyArr.Name != "vector<int>" {
		t.Errorf("theArray type = %+v", tyArr)
	}
	if c := p.ClassByID(tyArr.Class.ID); c == nil || c.Name != "vector<int>" {
		t.Errorf("theArray class link = %+v", tyArr.Class)
	}
	if ty := p.TypeByID(cl.Members[1].Type.ID); ty == nil || ty.Kind != "int" {
		t.Errorf("topOfStack type = %+v", ty)
	}
	if len(cl.Funcs) == 0 {
		t.Error("Stack<int> has no cfunc entries")
	}

	// (9): push routine attributes.
	push := findPDBRoutine(t, p, "push", cl.ID)
	if push.Access != "pub" || push.Linkage != "C++" || push.Storage != "NA" ||
		push.Virtual != "no" {
		t.Errorf("push attrs = %+v", push)
	}
	if push.Template.ID != pushT.ID {
		t.Errorf("push rtempl = %v, want te#%d", push.Template, pushT.ID)
	}
	// push calls isFull and vector<int>::operator[].
	isFull := findPDBRoutine(t, p, "isFull", cl.ID)
	foundIsFull := false
	for _, c := range push.Calls {
		if c.Callee.ID == isFull.ID {
			foundIsFull = true
			if c.Virtual {
				t.Error("isFull call should not be virtual")
			}
		}
	}
	if !foundIsFull {
		t.Errorf("push should rcall isFull; calls = %+v", push.Calls)
	}
	// (18): the signature reveals return and parameter types.
	sig := p.TypeByID(push.Signature.ID)
	if sig == nil || sig.Kind != "func" {
		t.Fatalf("push signature = %+v", sig)
	}
	if rt := p.TypeByID(sig.Ret.ID); rt == nil || rt.Kind != "void" {
		t.Errorf("push return type = %+v", rt)
	}
	if len(sig.Args) != 1 {
		t.Fatalf("push args = %+v", sig.Args)
	}
	argT := p.TypeByID(sig.Args[0].ID)
	if argT.Kind != "ref" {
		t.Fatalf("push arg = %+v", argT)
	}
	tref := p.TypeByID(argT.Elem.ID)
	if tref.Kind != "tref" || len(tref.Qual) != 1 || tref.Qual[0] != "const" {
		t.Fatalf("push arg referent = %+v", tref)
	}
	if inner := p.TypeByID(tref.Tref.ID); inner.Kind != "int" {
		t.Errorf("push arg inner type = %+v", inner)
	}
	// (17): isFull's signature is a const member function type.
	isFullSig := p.TypeByID(findPDBRoutine(t, p, "isFull", cl.ID).Signature.ID)
	hasConst := false
	for _, q := range isFullSig.Qual {
		if q == "const" {
			hasConst = true
		}
	}
	if !hasConst {
		t.Errorf("isFull signature should be const: %+v", isFullSig)
	}
}

// TestTable1Coverage is experiment E1: every Table 1 item type appears
// with its documented attributes for a kitchen-sink program.
func TestTable1Coverage(t *testing.T) {
	src := `
#define LIMIT 100
#define SQUARE(x) ((x)*(x))
#undef LIMIT
namespace util {
    enum Mode { FAST, SLOW };
    typedef unsigned long size_type;
    class Base {
    public:
        virtual void work() { }
        virtual ~Base() { }
    };
    class Derived : public Base {
        friend class Auditor;
    public:
        void work() { helper(); }
    private:
        void helper() { }
        int data;
    };
    template <class T> T identity(T v) { return v; }
}
int main() {
    util::Derived d;
    d.work();
    return util::identity(SQUARE(2));
}
`
	p := buildPDB(t, src, nil, ilanalyzer.Options{})
	text := p.String()

	// HEADER
	if !strings.HasPrefix(text, "<PDB 1.0>") {
		t.Error("missing header")
	}
	// SOURCE FILES with includes attribute capability exercised elsewhere.
	if len(p.Files) == 0 {
		t.Error("no source files")
	}
	// ROUTINES: template origin, parent class, access, signature,
	// calls, linkage/storage/virtuality characteristics.
	work := findPDBRoutine(t, p, "work", 0)
	if work.Virtual == "no" {
		// find the Derived::work override instead
		t.Errorf("work should be virtual: %+v", work)
	}
	derived := findPDBClass(t, p, "Derived")
	dWork := findPDBRoutine(t, p, "work", derived.ID)
	if dWork.Virtual != "virt" {
		t.Errorf("Derived::work virtual = %q", dWork.Virtual)
	}
	if len(dWork.Calls) != 1 {
		t.Errorf("Derived::work calls = %+v", dWork.Calls)
	}
	// CLASSES: bases, friends, members with access/kind/type.
	if len(derived.Bases) != 1 || derived.Bases[0].Access != "pub" {
		t.Errorf("bases = %+v", derived.Bases)
	}
	if len(derived.Friends) != 1 || derived.Friends[0] != "Auditor" {
		t.Errorf("friends = %+v", derived.Friends)
	}
	foundData := false
	for _, m := range derived.Members {
		if m.Name == "data" && m.Access == "priv" && m.Kind == "var" {
			foundData = true
		}
	}
	if !foundData {
		t.Errorf("members = %+v", derived.Members)
	}
	// TYPES: function type attributes checked in TestStackPDB.
	if len(p.Types) == 0 {
		t.Error("no types")
	}
	// TEMPLATES: func kind, text.
	ident := findPDBTemplate(t, p, "identity", "func")
	if !strings.Contains(ident.Text, "identity") {
		t.Errorf("ttext = %q", ident.Text)
	}
	// NAMESPACES with members.
	var util *pdb.Namespace
	for _, n := range p.Namespaces {
		if n.Name == "util" {
			util = n
		}
	}
	if util == nil {
		t.Fatal("namespace util missing")
	}
	joined := strings.Join(util.Members, " ")
	for _, want := range []string{"Base", "Derived", "Mode", "size_type"} {
		if !strings.Contains(joined, want) {
			t.Errorf("namespace members missing %s: %v", want, util.Members)
		}
	}
	// MACROS: kind and text.
	if len(p.Macros) != 3 {
		t.Fatalf("macros = %+v", p.Macros)
	}
	if p.Macros[1].Name != "SQUARE" || !strings.Contains(p.Macros[1].Text, "SQUARE(x)") {
		t.Errorf("macro 2 = %+v", p.Macros[1])
	}
	if p.Macros[2].Kind != "undef" {
		t.Errorf("macro 3 = %+v", p.Macros[2])
	}
}

// TestTemplateOriginScanVsDirect is the D2 ablation: the paper-faithful
// location scan attributes instantiations but NOT specializations; the
// proposed direct mode attributes both.
func TestTemplateOriginScanVsDirect(t *testing.T) {
	src := `
template <class T> class Traits {
public:
    int size() { return 1; }
};
template <> class Traits<double> {
public:
    int size() { return 8; }
};
int main() {
    Traits<int> ti;
    Traits<double> td;
    return ti.size() + td.size();
}
`
	scan := buildPDB(t, src, nil, ilanalyzer.Options{TemplateOrigin: ilanalyzer.OriginScan})
	direct := buildPDB(t, src, nil, ilanalyzer.Options{TemplateOrigin: ilanalyzer.OriginDirect})

	check := func(p *pdb.PDB, name string, wantOrigin bool, mode string) {
		t.Helper()
		c := findPDBClass(t, p, name)
		if c.Template.Valid() != wantOrigin {
			t.Errorf("[%s] %s ctempl valid = %v, want %v", mode, name, c.Template.Valid(), wantOrigin)
		}
	}
	check(scan, "Traits<int>", true, "scan")
	check(scan, "Traits<double>", false, "scan") // the paper's limitation
	check(direct, "Traits<int>", true, "direct")
	check(direct, "Traits<double>", true, "direct") // the proposed fix
}

func TestPDBRoundTripFromFrontend(t *testing.T) {
	p := buildPDB(t, stackSource, stackFiles(), ilanalyzer.Options{})
	text := p.String()
	parsed, err := pdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if parsed.String() != text {
		t.Error("frontend-generated PDB does not round-trip")
	}
	if parsed.ItemCount() != p.ItemCount() {
		t.Errorf("item counts differ: %d vs %d", parsed.ItemCount(), p.ItemCount())
	}
}

func TestUnusedMembersHaveNoBodyPos(t *testing.T) {
	src := `
template <class T> class W {
public:
    void used() { }
    void unused() { }
};
int main() { W<int> w; w.used(); return 0; }
`
	p := buildPDB(t, src, nil, ilanalyzer.Options{})
	var cl *pdb.Class
	for _, c := range p.Classes {
		if c.Name == "W<int>" {
			cl = c
		}
	}
	if cl == nil {
		t.Fatal("W<int> missing")
	}
	used := findPDBRoutine(t, p, "used", cl.ID)
	unused := findPDBRoutine(t, p, "unused", cl.ID)
	if !used.Pos.BodyBegin.Valid() {
		t.Error("used member should have a body position")
	}
	if unused.Pos.BodyBegin.Valid() {
		t.Error("unused member must not be instantiated (no body pos) in used mode")
	}
	if len(unused.Calls) != 0 {
		t.Error("unused member must have no calls")
	}
}

func TestCtorDtorKinds(t *testing.T) {
	src := `
class R {
public:
    R() { }
    ~R() { }
    R operator+(const R & o) const { return R(); }
};
void f() { R a, b; R c = a + b; }
`
	p := buildPDB(t, src, nil, ilanalyzer.Options{})
	cl := findPDBClass(t, p, "R")
	kinds := map[string]int{}
	for _, fr := range cl.Funcs {
		r := p.RoutineByID(fr.Routine.ID)
		kinds[r.Kind]++
	}
	if kinds["ctor"] != 1 || kinds["dtor"] != 1 || kinds["op"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	// f records ctor and dtor lifetime calls.
	f := findPDBRoutine(t, p, "f", 0)
	var kindSeq []string
	for _, c := range f.Calls {
		kindSeq = append(kindSeq, p.RoutineByID(c.Callee.ID).Kind)
	}
	ctors, dtors := 0, 0
	for _, k := range kindSeq {
		if k == "ctor" {
			ctors++
		}
		if k == "dtor" {
			dtors++
		}
	}
	if ctors < 2 || dtors < 2 {
		t.Errorf("lifetime calls: ctors=%d dtors=%d seq=%v", ctors, dtors, kindSeq)
	}
}

// TestAnalyzerOutputValidates checks referential integrity of every
// generated database (the pdb.Validate invariant).
func TestAnalyzerOutputValidates(t *testing.T) {
	for _, mode := range []ilanalyzer.OriginMode{ilanalyzer.OriginScan, ilanalyzer.OriginDirect} {
		p := buildPDB(t, stackSource, stackFiles(), ilanalyzer.Options{TemplateOrigin: mode})
		if errs := p.Validate(); len(errs) != 0 {
			t.Errorf("mode %v: %d integrity violations, first: %v", mode, len(errs), errs[0])
		}
	}
}
