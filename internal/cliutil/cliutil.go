// Package cliutil centralizes the flag and exit-code conventions the
// PDB command-line tools share, so -o, -j, -format, and the resilient
// ingestion flags (-lenient, -quarantine, -retry) behave identically
// across pdbmerge, pdbconv, pdbtree, pdblint, and friends.
//
// The exit-code convention follows pdblint: 0 is success, codes 1 and
// 2 are reserved for tool-specific findings severities, 3 means a
// usage or I/O failure, 4 means the run completed but the lenient
// reader recovered past malformed input (success with caveats — the
// output omits whatever was skipped), and 5 means another process
// holds the output lock (nothing was written; retry when it exits).
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pdt/internal/corpus"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// Exit codes shared by the tools.
const (
	ExitOK        = 0
	ExitUsage     = 3
	ExitRecovered = 4 // completed, but lenient ingestion recovered past damage
	ExitLocked    = 5 // another process holds the output lock; nothing was written
)

// Tool carries one command-line tool's name, usage line, flag set, and
// exit plumbing. Stderr and Exit are swappable for tests.
type Tool struct {
	Name      string
	UsageLine string
	Flags     *flag.FlagSet
	Stderr    io.Writer
	Exit      func(int)

	format  *string
	allowed []string

	metricsPath *string
	trace       *bool
	obs         *obs.Metrics
}

// New builds a Tool around a fresh flag set.
func New(name, usageLine string) *Tool {
	t := &Tool{
		Name:      name,
		UsageLine: usageLine,
		Flags:     flag.NewFlagSet(name, flag.ContinueOnError),
		Stderr:    os.Stderr,
		Exit:      os.Exit,
	}
	t.Flags.Usage = func() {
		fmt.Fprintf(t.Stderr, "usage: %s\n", t.UsageLine)
		t.Flags.PrintDefaults()
	}
	return t
}

// OutFlag registers the standard -o output flag.
func (t *Tool) OutFlag() *string {
	return t.Flags.String("o", "", "output file (default: stdout)")
}

// WorkersFlag registers the standard -j parallelism flag, consumed by
// the pdbio load and merge paths. -workers is the spelled-out alias
// (both names bind one value; the last one parsed wins).
func (t *Tool) WorkersFlag() *int {
	n := t.Flags.Int("j", 0, "parallel workers (0 = one per CPU, 1 = sequential)")
	t.Flags.IntVar(n, "workers", 0, "alias for -j")
	return n
}

// FormatFlag registers the standard -format flag restricted to the
// given values; the first is the default. Parse validates the choice.
func (t *Tool) FormatFlag(allowed ...string) *string {
	t.allowed = allowed
	usage := "output format: " + allowed[0]
	for _, a := range allowed[1:] {
		usage += " or " + a
	}
	t.format = t.Flags.String("format", allowed[0], usage)
	return t.format
}

// ObsFlags registers the shared self-instrumentation flags: -metrics
// writes a JSON snapshot of the run's stage spans, counters, and
// worker-pool utilization, and -trace prints the human-readable span
// tree. Both go to standard error when the -metrics argument is "-"
// (or for -trace always), keeping standard output reserved for the
// tool's own report.
func (t *Tool) ObsFlags() {
	t.metricsPath = t.Flags.String("metrics", "",
		"write a JSON metrics snapshot to this file (- = standard error)")
	t.trace = t.Flags.Bool("trace", false,
		"print the stage-span trace to standard error on exit")
}

// Obs returns the metrics registry implied by the observability flags:
// nil (the no-op instrument) unless -metrics or -trace was given.
// Call after Parse.
func (t *Tool) Obs() *obs.Metrics {
	if t.obs == nil && t.metricsPath != nil && (*t.metricsPath != "" || *t.trace) {
		t.obs = obs.New(t.Name)
	}
	return t.obs
}

// FlushObs writes the trace and metrics snapshot requested by the
// flags. It is a no-op when neither flag was given, so tools call it
// unconditionally before exiting.
func (t *Tool) FlushObs() {
	if t.Obs() == nil {
		return
	}
	if *t.trace {
		t.obs.WriteText(t.Stderr)
	}
	if *t.metricsPath == "" {
		return
	}
	var err error
	if *t.metricsPath == "-" {
		err = t.obs.WriteJSON(t.Stderr)
	} else {
		err = WriteOutput(*t.metricsPath, t.obs.WriteJSON)
	}
	if err != nil {
		t.Fatalf("writing metrics: %v", err)
	}
}

// Parse parses args, validates any -format choice, and enforces an
// argument-count range (maxArgs < 0 means unlimited). Violations print
// the usage line and exit with ExitUsage.
func (t *Tool) Parse(args []string, minArgs, maxArgs int) {
	t.Flags.SetOutput(t.Stderr)
	if err := t.Flags.Parse(args); err != nil {
		t.Exit(ExitUsage)
		return
	}
	if t.format != nil {
		ok := false
		for _, a := range t.allowed {
			ok = ok || *t.format == a
		}
		if !ok {
			t.Fatalf("unknown format %q", *t.format)
			return
		}
	}
	n := t.Flags.NArg()
	if n < minArgs || (maxArgs >= 0 && n > maxArgs) {
		t.Usage()
	}
}

// Usage prints the usage line and exits with ExitUsage.
func (t *Tool) Usage() {
	fmt.Fprintf(t.Stderr, "usage: %s\n", t.UsageLine)
	t.Exit(ExitUsage)
}

// Fatalf reports a failure as "name: message" and exits with
// ExitUsage, the shared usage/I-O failure code.
func (t *Tool) Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(t.Stderr, "%s: %s\n", t.Name, fmt.Sprintf(format, args...))
	t.Exit(ExitUsage)
}

// Create is the file-creation seam WithOutput and WriteOutput use;
// tests override it to exercise write/close failure paths. The
// default is a crash-consistent durable.Create: bytes are staged to a
// same-directory temp file and only an error-free Close publishes
// them (fsync, atomic rename, directory fsync), so a crash or full
// disk never leaves a torn file at the final path.
var Create = func(path string) (io.WriteCloser, error) {
	return durable.Create(path)
}

// WithOutput runs fn against the -o destination: stdout when path is
// empty, otherwise a crash-consistently created file (see Create)
// that is committed afterwards — reporting the commit error, so a
// full disk is not silent, and aborting the staged bytes when fn
// fails so existing output is never disturbed.
func (t *Tool) WithOutput(path string, fn func(io.Writer) error) error {
	return WriteOutput(path, fn)
}

// WriteOutput is the package-level form of Tool.WithOutput for tools
// that don't build a Tool (cxxparse, taurun): fn writes to stdout
// when path is empty, else through the Create seam with
// commit-on-success / abort-on-error semantics.
func WriteOutput(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		// Prefer a clean abort (durable writers discard their staging
		// file and leave the target untouched); close is the fallback
		// for seam overrides that are plain files.
		if a, ok := f.(interface{ Abort() error }); ok {
			a.Abort()
		} else {
			f.Close()
		}
		return err
	}
	return f.Close()
}

// Resilience carries the shared resilient-ingestion flags (-lenient,
// -quarantine, -retry, -retry-backoff) and the stats they feed, so
// every tool wires them identically: register with ResilienceFlags,
// pass Options() to the pdbio load, and route the final status through
// Exit to report "completed with recoveries" as ExitRecovered.
type Resilience struct {
	lenient    *bool
	quarantine *string
	retries    *int
	backoff    *time.Duration
	stats      pdbio.Stats
}

// ResilienceFlags registers the resilient-ingestion flags on the tool.
func (t *Tool) ResilienceFlags() *Resilience {
	r := &Resilience{}
	r.lenient = t.Flags.Bool("lenient", false,
		"recover past malformed item blocks instead of failing (exit 4 when anything was skipped)")
	r.quarantine = t.Flags.String("quarantine", "",
		"with -lenient, dump skipped spans into this directory")
	r.retries = t.Flags.Int("retry", 0,
		"retry transient I/O failures up to this many extra attempts per file")
	r.backoff = t.Flags.Duration("retry-backoff", 50*time.Millisecond,
		"initial sleep between retries (doubles each attempt)")
	return r
}

// Lenient reports whether -lenient was given. Call after Parse.
func (r *Resilience) Lenient() bool { return *r.lenient }

// Quarantine returns the -quarantine directory ("" = disabled).
func (r *Resilience) Quarantine() string { return *r.quarantine }

// Retries returns the -retry attempt budget.
func (r *Resilience) Retries() int { return *r.retries }

// RetryBackoff returns the -retry-backoff initial sleep.
func (r *Resilience) RetryBackoff() time.Duration { return *r.backoff }

// Stats exposes the resilience counters the loads accumulate.
func (r *Resilience) Stats() *pdbio.Stats { return &r.stats }

// Options translates the parsed flags into pdbio load options. The
// returned slice always wires the shared Stats, so Exit sees what the
// loads recovered. Call after Parse.
func (r *Resilience) Options() []pdbio.Option {
	opts := []pdbio.Option{pdbio.WithStats(&r.stats)}
	if *r.lenient {
		opts = append(opts, pdbio.WithLenient())
	}
	if *r.quarantine != "" {
		opts = append(opts, pdbio.WithQuarantine(*r.quarantine))
	}
	if *r.retries > 0 {
		opts = append(opts, pdbio.WithRetry(*r.retries, *r.backoff))
	}
	return opts
}

// Incremental carries the shared incremental-analysis flags: -changed
// names the files a diff touched, -findings-db points at the
// content-addressed findings cache directory. pdblint uses both to
// splice cached findings; pdbquery accepts -changed for its affected
// query. Registered together so the two tools spell them identically.
type Incremental struct {
	changed    *string
	findingsDB *string
}

// IncrementalFlags registers -changed and -findings-db on the tool.
func (t *Tool) IncrementalFlags() *Incremental {
	i := &Incremental{}
	i.changed = t.Flags.String("changed", "",
		"comma-separated changed source files (reported as the affected set)")
	i.findingsDB = t.Flags.String("findings-db", "",
		"findings cache directory; when set, runs incrementally against it")
	return i
}

// Enabled reports whether -findings-db was given. Call after Parse.
func (i *Incremental) Enabled() bool { return *i.findingsDB != "" }

// Dir returns the -findings-db directory.
func (i *Incremental) Dir() string { return *i.findingsDB }

// Changed returns the parsed -changed list (empty-element tolerant).
func (i *Incremental) Changed() []string {
	var out []string
	for _, f := range strings.Split(*i.changed, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Exit folds the recovery status into a tool's exit code: a clean run
// (base ExitOK) that recovered past damage becomes ExitRecovered, and
// any other base code — findings severities, usage failures — wins
// unchanged.
func (r *Resilience) Exit(base int) int {
	if base == ExitOK && r.stats.Recovered.Load() > 0 {
		return ExitRecovered
	}
	return base
}

// CorpusFlags bundles the corpus-loading flag groups every PDB-reading
// tool shares — workers (-j/-workers) and the resilience group — into
// one registration whose parsed values map 1:1 onto corpus.Options.
// This is the single spelling point: a flag spelled here is spelled
// identically on every tool and on the pdbd daemon config.
type CorpusFlags struct {
	tool    *Tool
	workers *int
	strict  *bool
	ckpt    *string
	resume  *bool
	res     *Resilience
}

// CorpusFlags registers the shared corpus-loading flags on the tool:
// -j/-workers plus the resilience group (-lenient, -quarantine,
// -retry, -retry-backoff).
func (t *Tool) CorpusFlags() *CorpusFlags {
	return &CorpusFlags{
		tool:    t,
		workers: t.WorkersFlag(),
		res:     t.ResilienceFlags(),
	}
}

// WithStrict additionally registers -strict (input validation) for
// tools that expose it.
func (c *CorpusFlags) WithStrict() *CorpusFlags {
	c.strict = c.tool.Flags.Bool("strict", false,
		"validate the referential integrity of every input database")
	return c
}

// WithCheckpoint additionally registers -checkpoint-dir and -resume
// (merge journal reuse) for tools that expose them.
func (c *CorpusFlags) WithCheckpoint() *CorpusFlags {
	c.ckpt = c.tool.Flags.String("checkpoint-dir", "",
		"journal every completed merge unit into this directory (crash-safe, content-addressed)")
	c.resume = c.tool.Flags.Bool("resume", false,
		"with -checkpoint-dir, reuse journaled units from an interrupted run instead of recomputing them")
	return c
}

// Options translates the parsed flags into a corpus.Options, wiring in
// the tool's metrics registry and the shared resilience stats. Call
// after Parse.
func (c *CorpusFlags) Options() corpus.Options {
	o := corpus.Options{
		Workers: *c.workers,
		Metrics: c.tool.Obs(),
		Stats:   c.res.Stats(),
	}
	if c.strict != nil {
		o.Strict = *c.strict
	}
	if c.ckpt != nil {
		o.CheckpointDir = *c.ckpt
		o.Resume = *c.resume
	}
	if *c.res.lenient {
		o.Lenient = true
	}
	if *c.res.quarantine != "" {
		o.Quarantine = *c.res.quarantine
	}
	if *c.res.retries > 0 {
		o.Retries = *c.res.retries
		o.RetryBackoff = *c.res.backoff
	}
	return o
}

// Resilience exposes the embedded resilience flag group (for Exit).
func (c *CorpusFlags) Resilience() *Resilience { return c.res }

// ShardFlags carries the distributed-merge flag group: -shards selects
// the number of supervised worker processes the merge is partitioned
// across, -shard-heartbeat tunes the worker lease refresh interval
// (a worker silent for four heartbeats is declared wedged, killed, and
// its shard reassigned), and -worker-shard is the internal re-exec
// entry point the coordinator spawns workers through.
type ShardFlags struct {
	shards    *int
	heartbeat *time.Duration
	worker    *string
}

// ShardFlagsGroup registers the distributed-merge flags on the tool.
func (t *Tool) ShardFlagsGroup() *ShardFlags {
	s := &ShardFlags{}
	s.shards = t.Flags.Int("shards", 0,
		"partition the merge across this many supervised worker processes (0 = single-process)")
	s.heartbeat = t.Flags.Duration("shard-heartbeat", time.Second,
		"worker lease heartbeat interval; a worker silent for 4 heartbeats is killed and its shard reassigned")
	s.worker = t.Flags.String("worker-shard", "",
		"internal: run as a shard worker over this manifest file")
	return s
}

// Enabled reports whether -shards selected multi-process mode. Call
// after Parse.
func (s *ShardFlags) Enabled() bool { return *s.shards > 0 }

// Shards returns the -shards value.
func (s *ShardFlags) Shards() int { return *s.shards }

// Heartbeat returns the -shard-heartbeat interval.
func (s *ShardFlags) Heartbeat() time.Duration { return *s.heartbeat }

// WorkerManifest returns the -worker-shard manifest path; non-empty
// means this process was spawned as a shard worker and must run
// shardmerge.WorkerMain instead of a normal invocation.
func (s *ShardFlags) WorkerManifest() string { return *s.worker }

// Exit folds the recovery status into the tool's exit code, as
// Resilience.Exit does.
func (c *CorpusFlags) Exit(base int) int { return c.res.Exit(base) }
