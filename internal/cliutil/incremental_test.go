package cliutil

import (
	"reflect"
	"testing"
)

func TestIncrementalFlagsDefaults(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	inc := tool.IncrementalFlags()
	code := run(t, func() { tool.Parse([]string{"input.pdb"}, 1, 1) })
	if code != -1 {
		t.Fatalf("Parse exited with %d", code)
	}
	if inc.Enabled() {
		t.Error("incremental mode defaults on")
	}
	if got := inc.Changed(); len(got) != 0 {
		t.Errorf("default Changed() = %v", got)
	}
}

func TestIncrementalFlagsParse(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	inc := tool.IncrementalFlags()
	code := run(t, func() {
		tool.Parse([]string{"-changed", "a.cc, b.h,,c.h ", "-findings-db", "cache",
			"input.pdb"}, 1, 1)
	})
	if code != -1 {
		t.Fatalf("Parse exited with %d", code)
	}
	if !inc.Enabled() || inc.Dir() != "cache" {
		t.Errorf("findings db = enabled=%v dir=%q", inc.Enabled(), inc.Dir())
	}
	if got := inc.Changed(); !reflect.DeepEqual(got, []string{"a.cc", "b.h", "c.h"}) {
		t.Errorf("Changed() = %v", got)
	}
}
