package cliutil

import (
	"errors"
	"io"
	"testing"
	"time"
)

func TestResilienceFlagsDefaults(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	res := tool.ResilienceFlags()
	code := run(t, func() { tool.Parse([]string{"input.pdb"}, 1, 1) })
	if code != -1 {
		t.Fatalf("Parse exited with %d", code)
	}
	if res.Lenient() {
		t.Error("lenient defaults on")
	}
	// Only the stats wiring by default: no lenient/quarantine/retry.
	if got := len(res.Options()); got != 1 {
		t.Errorf("default Options() = %d options, want just WithStats", got)
	}
	if res.Exit(ExitOK) != ExitOK {
		t.Error("clean run with no recoveries must exit 0")
	}
}

func TestResilienceFlagsParse(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	res := tool.ResilienceFlags()
	code := run(t, func() {
		tool.Parse([]string{"-lenient", "-quarantine", "qdir",
			"-retry", "2", "-retry-backoff", "10ms", "input.pdb"}, 1, 1)
	})
	if code != -1 {
		t.Fatalf("Parse exited with %d", code)
	}
	if !res.Lenient() {
		t.Error("-lenient not reflected")
	}
	if *res.backoff != 10*time.Millisecond {
		t.Errorf("backoff = %v", *res.backoff)
	}
	// Stats + lenient + quarantine + retry.
	if got := len(res.Options()); got != 4 {
		t.Errorf("Options() = %d options, want 4", got)
	}
}

func TestResilienceExit(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	res := tool.ResilienceFlags()
	run(t, func() { tool.Parse([]string{"-lenient", "input.pdb"}, 1, 1) })

	res.Stats().Recovered.Add(3)
	if got := res.Exit(ExitOK); got != ExitRecovered {
		t.Errorf("Exit(0) with recoveries = %d, want %d", got, ExitRecovered)
	}
	// Findings and failure codes always win over the recovery marker.
	for _, base := range []int{1, 2, ExitUsage} {
		if got := res.Exit(base); got != base {
			t.Errorf("Exit(%d) with recoveries = %d, want the base code", base, got)
		}
	}
}

// failingWriteCloser reports an error on Close — the full-disk failure
// mode that only surfaces when buffers flush.
type failingWriteCloser struct {
	closeErr error
	writeErr error
}

func (f *failingWriteCloser) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return len(p), nil
}

func (f *failingWriteCloser) Close() error { return f.closeErr }

func TestWithOutputPropagatesCloseError(t *testing.T) {
	closeErr := errors.New("disk full on close")
	orig := Create
	Create = func(path string) (io.WriteCloser, error) {
		return &failingWriteCloser{closeErr: closeErr}, nil
	}
	defer func() { Create = orig }()

	tool, _ := newTestTool("demo", "demo")
	err := tool.WithOutput("out.pdb", func(w io.Writer) error {
		_, werr := w.Write([]byte("payload"))
		return werr
	})
	if !errors.Is(err, closeErr) {
		t.Errorf("WithOutput swallowed the close error: %v", err)
	}
}

func TestWithOutputWriteErrorWinsOverClose(t *testing.T) {
	writeErr := errors.New("write failed")
	orig := Create
	Create = func(path string) (io.WriteCloser, error) {
		return &failingWriteCloser{writeErr: writeErr, closeErr: errors.New("close also failed")}, nil
	}
	defer func() { Create = orig }()

	tool, _ := newTestTool("demo", "demo")
	err := tool.WithOutput("out.pdb", func(w io.Writer) error {
		_, werr := w.Write([]byte("payload"))
		return werr
	})
	if !errors.Is(err, writeErr) {
		t.Errorf("err = %v, want the write error", err)
	}
}
