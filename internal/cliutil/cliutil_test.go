package cliutil

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exitSentinel emulates os.Exit in tests: Exit records the code and
// panics so execution stops where the real tool would terminate.
type exitSentinel struct{ code int }

// newTestTool builds a Tool whose Stderr and Exit are captured.
func newTestTool(name, usage string) (*Tool, *strings.Builder) {
	t := New(name, usage)
	var stderr strings.Builder
	t.Stderr = &stderr
	t.Exit = func(code int) { panic(exitSentinel{code}) }
	return t, &stderr
}

// run invokes fn and reports the exit code it terminated with, or -1
// if it returned normally.
func run(t *testing.T, fn func()) int {
	t.Helper()
	code := -1
	func() {
		defer func() {
			if r := recover(); r != nil {
				s, ok := r.(exitSentinel)
				if !ok {
					panic(r)
				}
				code = s.code
			}
		}()
		fn()
	}()
	return code
}

func TestParseAcceptsValidArgs(t *testing.T) {
	tool, _ := newTestTool("demo", "demo [-o out] file")
	out := tool.OutFlag()
	workers := tool.WorkersFlag()
	code := run(t, func() {
		tool.Parse([]string{"-o", "x.txt", "-j", "3", "input.pdb"}, 1, 1)
	})
	if code != -1 {
		t.Fatalf("Parse exited with %d on valid args", code)
	}
	if *out != "x.txt" || *workers != 3 || tool.Flags.Arg(0) != "input.pdb" {
		t.Errorf("flags = (%q, %d, %q)", *out, *workers, tool.Flags.Arg(0))
	}
}

func TestParseArgCountViolations(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		min, max int
	}{
		{"too-few", nil, 1, 1},
		{"too-many", []string{"a", "b"}, 1, 1},
	}
	for _, tc := range cases {
		tool, stderr := newTestTool("demo", "demo file")
		code := run(t, func() { tool.Parse(tc.args, tc.min, tc.max) })
		if code != ExitUsage {
			t.Errorf("%s: exit = %d, want %d", tc.name, code, ExitUsage)
		}
		if !strings.Contains(stderr.String(), "usage: demo file") {
			t.Errorf("%s: stderr %q lacks the usage line", tc.name, stderr.String())
		}
	}
	// maxArgs < 0 means unlimited.
	tool, _ := newTestTool("demo", "demo file...")
	if code := run(t, func() { tool.Parse([]string{"a", "b", "c"}, 1, -1) }); code != -1 {
		t.Errorf("unlimited: exit = %d, want none", code)
	}
}

func TestParseBadFlag(t *testing.T) {
	tool, _ := newTestTool("demo", "demo file")
	if code := run(t, func() { tool.Parse([]string{"-nosuch"}, 0, -1) }); code != ExitUsage {
		t.Errorf("bad flag: exit = %d, want %d", code, ExitUsage)
	}
}

func TestFormatFlagValidation(t *testing.T) {
	tool, _ := newTestTool("demo", "demo [-format=text|json] file")
	format := tool.FormatFlag("text", "json")
	if *format != "text" {
		t.Errorf("default format = %q, want text", *format)
	}
	if code := run(t, func() { tool.Parse([]string{"-format=json", "f"}, 1, 1) }); code != -1 {
		t.Fatalf("valid format rejected with exit %d", code)
	}
	if *format != "json" {
		t.Errorf("format = %q, want json", *format)
	}

	tool2, stderr := newTestTool("demo", "demo [-format=text|json] file")
	tool2.FormatFlag("text", "json")
	if code := run(t, func() { tool2.Parse([]string{"-format=xml", "f"}, 1, 1) }); code != ExitUsage {
		t.Errorf("bad format: exit = %d, want %d", code, ExitUsage)
	}
	if !strings.Contains(stderr.String(), `unknown format "xml"`) {
		t.Errorf("stderr %q lacks the format complaint", stderr.String())
	}
}

func TestFatalfFormat(t *testing.T) {
	tool, stderr := newTestTool("demo", "demo")
	code := run(t, func() { tool.Fatalf("boom %d", 7) })
	if code != ExitUsage {
		t.Errorf("exit = %d, want %d", code, ExitUsage)
	}
	if got := stderr.String(); got != "demo: boom 7\n" {
		t.Errorf("stderr = %q", got)
	}
}

func TestObsFlags(t *testing.T) {
	// No flags: Obs stays nil and FlushObs writes nothing.
	tool, stderr := newTestTool("demo", "demo file")
	tool.ObsFlags()
	if code := run(t, func() { tool.Parse([]string{"f"}, 1, 1) }); code != -1 {
		t.Fatalf("Parse exited with %d", code)
	}
	if tool.Obs() != nil {
		t.Error("Obs() without flags should be nil")
	}
	tool.FlushObs()
	if stderr.String() != "" {
		t.Errorf("FlushObs wrote %q with no flags set", stderr.String())
	}

	// -metrics -: a registry appears and the snapshot lands on stderr.
	tool, stderr = newTestTool("demo", "demo file")
	tool.ObsFlags()
	run(t, func() { tool.Parse([]string{"-metrics", "-", "f"}, 1, 1) })
	m := tool.Obs()
	if m == nil {
		t.Fatal("Obs() with -metrics should not be nil")
	}
	m.Counter("events").Add(2)
	tool.FlushObs()
	if !strings.Contains(stderr.String(), `"tool": "demo"`) ||
		!strings.Contains(stderr.String(), `"events": 2`) {
		t.Errorf("snapshot on stderr = %q", stderr.String())
	}

	// -metrics <file> creates the file; -trace adds the text tree.
	tool, stderr = newTestTool("demo", "demo file")
	tool.ObsFlags()
	path := filepath.Join(t.TempDir(), "m.json")
	run(t, func() { tool.Parse([]string{"-metrics", path, "-trace", "f"}, 1, 1) })
	tool.Obs().StartSpan("work").End()
	tool.FlushObs()
	data, err := os.ReadFile(path)
	if err != nil || !strings.Contains(string(data), `"name": "work"`) {
		t.Errorf("metrics file: %v %q", err, data)
	}
	if !strings.Contains(stderr.String(), "work") {
		t.Errorf("-trace output = %q", stderr.String())
	}

	// An uncreatable metrics path is an I/O failure: ExitUsage.
	tool, _ = newTestTool("demo", "demo file")
	tool.ObsFlags()
	run(t, func() { tool.Parse([]string{"-metrics", filepath.Join(t.TempDir(), "no", "dir", "x"), "f"}, 1, 1) })
	tool.Obs()
	if code := run(t, func() { tool.FlushObs() }); code != ExitUsage {
		t.Errorf("FlushObs on uncreatable path: exit = %d, want %d", code, ExitUsage)
	}
}

func TestWithOutputFile(t *testing.T) {
	tool, _ := newTestTool("demo", "demo")
	path := filepath.Join(t.TempDir(), "out.txt")
	err := tool.WithOutput(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "hello\n")
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Errorf("file = %q", data)
	}

	// Creation failure surfaces as the returned error, not an exit.
	err = tool.WithOutput(filepath.Join(t.TempDir(), "no", "dir", "x"),
		func(io.Writer) error { return nil })
	if err == nil {
		t.Error("uncreatable path should fail")
	}
}
