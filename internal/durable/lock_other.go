//go:build !unix

package durable

import (
	"fmt"
	"os"
	"time"
)

// AcquireLock on platforms without flock(2) falls back to
// create-exclusive semantics: the lock file's existence is the lock.
// Unlike the flock path a crashed holder leaves the file behind, so
// the caller may need to remove a stale lock by hand.
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("durable: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	return &Lock{f: f, path: path}, nil
}

// reclaimStale without flock(2) can only trust the heartbeat: the lock
// file's existence is the lock, and a crashed holder leaves it behind
// forever. A stale heartbeat therefore means the holder is presumed
// dead and the file is removed outright.
func reclaimStale(path string, age time.Duration) (bool, error) {
	_ = age
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("durable: breaking stale lock %s: %w", path, err)
	}
	return true, nil
}

// Release drops the lock and removes the lock file. Idempotent.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	cerr := f.Close()
	rerr := os.Remove(l.path)
	if cerr != nil {
		return cerr
	}
	return rerr
}
