//go:build !unix

package durable

import (
	"fmt"
	"os"
)

// AcquireLock on platforms without flock(2) falls back to
// create-exclusive semantics: the lock file's existence is the lock.
// Unlike the flock path a crashed holder leaves the file behind, so
// the caller may need to remove a stale lock by hand.
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("durable: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	return &Lock{f: f, path: path}, nil
}

// Release drops the lock and removes the lock file. Idempotent.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	cerr := f.Close()
	rerr := os.Remove(l.path)
	if cerr != nil {
		return cerr
	}
	return rerr
}
