package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Journal is a content-addressed checkpoint store: each entry is an
// opaque payload filed under a caller-derived key (for pdbio.Merge,
// the hash of a merge unit's inputs and options). Entries are written
// atomically and self-verify on load — the file carries its own key
// and a checksum of its payload, so a stale, torn, or tampered
// checkpoint is detected by hash mismatch and reported as invalid
// rather than silently reused. That is the whole resume contract: a
// key can only ever name one byte string, so reusing a verified entry
// is proven equivalent to recomputing it.
type Journal struct {
	fsys FS
	dir  string
}

// journalHeader is the first line of every checkpoint file. The key is
// repeated inside the file so a renamed or copied checkpoint cannot
// masquerade as another unit's result.
const journalMagic = "#pdt-checkpoint v1"

// OpenJournal opens (creating if needed) the checkpoint directory.
// Writes go through fsys — the kill-point seam — while loads read the
// real filesystem directly.
func OpenJournal(fsys FS, dir string) (*Journal, error) {
	if fsys == nil {
		fsys = OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: journal %s: %w", dir, err)
	}
	return &Journal{fsys: fsys, dir: dir}, nil
}

// Dir reports the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Sum returns the hex SHA-256 of data — the leaf hash for
// content-addressed keys.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// KeyOf derives a checkpoint key from its labeled parts (child hashes,
// option fingerprints). Parts are length-prefix framed before hashing
// so no two distinct part lists collide by concatenation.
func KeyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (j *Journal) path(key string) string {
	return filepath.Join(j.dir, key+".ckpt")
}

// Store files payload under key, atomically and durably. Concurrent
// stores of the same key are safe: each stages to its own temp file
// and the atomic rename makes one complete entry win.
func (j *Journal) Store(key string, payload []byte) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s key=%s sum=%s len=%d\n", journalMagic, key, Sum(payload), len(payload))
	buf.Write(payload)
	return WriteFileFS(j.fsys, j.path(key), buf.Bytes(), 0o644)
}

// Load fetches the payload stored under key. ok reports a verified
// hit. invalid reports an entry that exists but failed verification —
// wrong magic, key mismatch, checksum mismatch, or truncation — which
// the caller should count (checkpoint.invalidated) and overwrite;
// Load never returns such bytes.
func (j *Journal) Load(key string) (payload []byte, ok, invalid bool) {
	data, err := os.ReadFile(j.path(key))
	if err != nil {
		return nil, false, false
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false, true
	}
	header, body := string(data[:nl]), data[nl+1:]
	var gotKey, gotSum string
	var gotLen int
	rest, found := strings.CutPrefix(header, journalMagic+" ")
	if !found {
		return nil, false, true
	}
	if _, err := fmt.Sscanf(rest, "key=%s sum=%s len=%d", &gotKey, &gotSum, &gotLen); err != nil {
		return nil, false, true
	}
	if gotKey != key || gotLen != len(body) || gotSum != Sum(body) {
		return nil, false, true
	}
	return body, true, false
}

// Keys lists every key with an entry in the journal, sorted. Entries
// are not verified — Load still decides whether each one is usable.
func (j *Journal) Keys() ([]string, error) {
	names, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: journal %s: %w", j.dir, err)
	}
	var keys []string
	for _, de := range names {
		if name, ok := strings.CutSuffix(de.Name(), ".ckpt"); ok && !de.IsDir() {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Remove deletes the entry stored under key, if any.
func (j *Journal) Remove(key string) error {
	err := j.fsys.Remove(j.path(key))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}
