package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// listDir returns the names in dir, for leftover-staging-file checks.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")

	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Errorf("content = %q, want %q", got, "first")
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Errorf("content after replace = %q, want %q", got, "second")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("staging files left behind: %v", names)
	}
}

func TestWriterCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Abort: the target keeps its old bytes and the staging file is gone.
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial new conte")); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Errorf("after abort: content = %q, want old bytes", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("after abort: staging files left behind: %v", names)
	}
	// Abort after Abort (and Close after Abort) are no-ops.
	if err := w.Abort(); err != nil {
		t.Errorf("second abort: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("close after abort: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Errorf("close after abort touched the target: %q", got)
	}

	// Commit: the target atomically becomes the new bytes.
	w, err = Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Errorf("after commit: content = %q, want %q", got, "new")
	}
	// Abort after a successful Close must not disturb the target.
	if err := w.Abort(); err != nil {
		t.Errorf("abort after close: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Errorf("abort after close touched the target: %q", got)
	}
}

func TestCreateFailsWithoutDirectory(t *testing.T) {
	_, err := Create(filepath.Join(t.TempDir(), "missing", "out.txt"))
	if err == nil {
		t.Fatal("Create in a missing directory succeeded")
	}
}

func TestLockExcludesSecondAcquirer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.lock")
	l1, err := AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireLock(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire: err = %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(path)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	defer l2.Release()
	// Release is idempotent.
	if err := l1.Release(); err != nil {
		t.Errorf("double release: %v", err)
	}
}

// TestLockMutualExclusionRace drives N goroutines through
// acquire/critical-section/release and checks (under -race) that the
// lock admits exactly one holder at a time.
func TestLockMutualExclusionRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.lock")
	var inside, acquired int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l, err := AcquireLock(path)
				if err != nil {
					if !errors.Is(err, ErrLocked) {
						t.Errorf("acquire: %v", err)
					}
					continue
				}
				mu.Lock()
				inside++
				if inside != 1 {
					t.Errorf("%d holders inside the critical section", inside)
				}
				acquired++
				inside--
				mu.Unlock()
				if err := l.Release(); err != nil {
					t.Errorf("release: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if acquired == 0 {
		t.Error("no goroutine ever acquired the lock")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(nil, filepath.Join(t.TempDir(), "ck"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("<PDB 1.0>\nso#1 a.h\n")
	key := KeyOf("v1", Sum(payload))
	if _, ok, invalid := j.Load(key); ok || invalid {
		t.Fatalf("load before store: ok=%v invalid=%v, want miss", ok, invalid)
	}
	if err := j.Store(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, invalid := j.Load(key)
	if !ok || invalid {
		t.Fatalf("load after store: ok=%v invalid=%v", ok, invalid)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if err := j.Remove(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := j.Load(key); ok {
		t.Error("load after remove: hit")
	}
	if err := j.Remove(key); err != nil {
		t.Errorf("remove of a missing entry: %v", err)
	}
}

// TestJournalInvalidation: every way an entry can be stale — torn
// payload, flipped byte, renamed key, foreign content — must read as
// invalid, never as a hit.
func TestJournalInvalidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	j, err := OpenJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload bytes here")
	key := KeyOf("unit", Sum(payload))
	if err := j.Store(key, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".ckpt")
	stored, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tamper := map[string][]byte{
		"truncated":    stored[:len(stored)-3],
		"flipped-byte": append(append([]byte{}, stored[:len(stored)-1]...), stored[len(stored)-1]^0x20),
		"no-header":    []byte("not a checkpoint at all"),
		"empty":        {},
	}
	for name, bad := range tamper {
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, invalid := j.Load(key); ok || !invalid {
			t.Errorf("%s: ok=%v invalid=%v, want invalidated", name, ok, invalid)
		}
	}

	// A valid entry renamed under another key must not be reused: the
	// key inside the file disagrees with the requested one.
	if err := j.Store(key, payload); err != nil {
		t.Fatal(err)
	}
	otherKey := KeyOf("other-unit")
	if err := os.Rename(path, filepath.Join(dir, otherKey+".ckpt")); err != nil {
		t.Fatal(err)
	}
	if _, ok, invalid := j.Load(otherKey); ok || !invalid {
		t.Errorf("renamed entry: ok=%v invalid=%v, want invalidated", ok, invalid)
	}
}

// TestKeyOfFraming: part boundaries must matter, or distinct input
// lists would collide by concatenation.
func TestKeyOfFraming(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error(`KeyOf("ab","c") == KeyOf("a","bc")`)
	}
	if KeyOf("a", "b") == KeyOf("a", "b", "") {
		t.Error("trailing empty part does not change the key")
	}
	if !strings.EqualFold(KeyOf("x"), KeyOf("x")) {
		t.Error("KeyOf is not deterministic")
	}
}
