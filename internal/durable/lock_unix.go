//go:build unix

package durable

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// AcquireLock takes the advisory exclusive lock file at path without
// blocking. A second acquirer — in this process or another — gets
// ErrLocked immediately, so two pdbmerge runs on one output fail fast
// instead of interleaving writes or checkpoints. The lock is a
// flock(2) on an O_CREATE file: it survives nothing (the kernel drops
// it when the holder dies), so a crashed run never wedges the next
// one, and the lock file itself is left in place (removing it would
// race a concurrent acquirer).
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("durable: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	return &Lock{f: f, path: path}, nil
}

// Release drops the lock. Idempotent.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	uerr := syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	cerr := f.Close()
	return errors.Join(uerr, cerr)
}
