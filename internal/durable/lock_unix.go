//go:build unix

package durable

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"
)

// AcquireLock takes the advisory exclusive lock file at path without
// blocking. A second acquirer — in this process or another — gets
// ErrLocked immediately, so two pdbmerge runs on one output fail fast
// instead of interleaving writes or checkpoints. The lock is a
// flock(2) on an O_CREATE file: it survives nothing (the kernel drops
// it when the holder dies), so a crashed run never wedges the next
// one, and the lock file itself is left in place (removing it would
// race a concurrent acquirer).
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("durable: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	return &Lock{f: f, path: path}, nil
}

// reclaimStale probes a stale-heartbeat lock by acquiring it: a flock
// holder that died has already released the lock in the kernel, so a
// successful acquire proves the holder is gone. A failed acquire means
// a live process still holds it despite the frozen heartbeat — wedged,
// not dead — and the caller gets ErrLocked so it can kill the holder
// (which releases the flock) before retrying.
func reclaimStale(path string, age time.Duration) (bool, error) {
	l, err := AcquireLock(path)
	if err != nil {
		if errors.Is(err, ErrLocked) {
			return false, fmt.Errorf("durable: %s: heartbeat stale for %v but holder alive: %w", path, age, ErrLocked)
		}
		return false, err
	}
	return true, l.Release()
}

// Release drops the lock. Idempotent.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	uerr := syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	cerr := f.Close()
	return errors.Join(uerr, cerr)
}
