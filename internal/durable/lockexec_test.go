//go:build unix

// Multi-process lock contention tests: every scenario here crosses a
// real process boundary via re-exec of the test binary, because flock
// semantics that matter for the lease protocol — release on death,
// survival under SIGSTOP — are invisible to in-process tests.
package durable_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pdt/internal/durable"
)

// lockHelperEnv selects the helper mode: the re-exec'd test binary
// checks it in TestMain before the testing framework parses flags.
const lockHelperEnv = "PDT_TEST_LOCK_HELPER"

func TestMain(m *testing.M) {
	switch os.Getenv(lockHelperEnv) {
	case "":
		os.Exit(m.Run())
	case "hold":
		// Acquire the lock named by argv's last element, heartbeat it,
		// print "held", and hold until stdin closes.
		lockHelperHold(os.Args[len(os.Args)-1])
	case "try":
		// Try a non-blocking acquire and report the outcome.
		_, err := durable.AcquireLock(os.Args[len(os.Args)-1])
		if errors.Is(err, durable.ErrLocked) {
			fmt.Println("locked")
			os.Exit(0)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("acquired")
		os.Exit(0)
	}
	os.Exit(2)
}

func lockHelperHold(path string) {
	l, err := durable.AcquireLock(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("held")
	go func() {
		for {
			time.Sleep(10 * time.Millisecond)
			if l.Touch() != nil {
				return
			}
		}
	}()
	// Park until the parent closes stdin (or kills us).
	buf := make([]byte, 1)
	os.Stdin.Read(buf)
	l.Release()
	os.Exit(0)
}

// spawnHolder starts a child process that acquires and heartbeats the
// lock, returning once the child confirms it holds it. Closing the
// returned pipe makes the child release and exit cleanly.
func spawnHolder(t *testing.T, path string) (*exec.Cmd, *os.File) {
	t.Helper()
	cmd := exec.Command(os.Args[0], path)
	cmd.Env = append(os.Environ(), lockHelperEnv+"=hold")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := out.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "held") {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("holder never confirmed: %q err=%v", buf[:n], err)
	}
	return cmd, stdin.(*os.File)
}

// TestLockContendedAcrossProcesses: while another process holds the
// flock, this process sees ErrLocked both directly and from a child.
func TestLockContendedAcrossProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	cmd, stdin := spawnHolder(t, path)
	defer func() { stdin.Close(); cmd.Wait() }()

	if _, err := durable.AcquireLock(path); !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("AcquireLock against live cross-process holder: %v, want ErrLocked", err)
	}
	try := exec.Command(os.Args[0], path)
	try.Env = append(os.Environ(), lockHelperEnv+"=try")
	out, err := try.Output()
	if err != nil || strings.TrimSpace(string(out)) != "locked" {
		t.Fatalf("third-process probe: %q err=%v, want locked", out, err)
	}
}

// TestAcquireLockWaitOutlastsHolder: AcquireLockWait must block while
// the holder lives and win promptly once it releases.
func TestAcquireLockWaitOutlastsHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	cmd, stdin := spawnHolder(t, path)

	if _, err := durable.AcquireLockWait(path, 50*time.Millisecond); !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("short wait against live holder: %v, want ErrLocked", err)
	}
	// Release the holder shortly after the wait begins.
	go func() {
		time.Sleep(100 * time.Millisecond)
		stdin.Close()
		cmd.Wait()
	}()
	l, err := durable.AcquireLockWait(path, 5*time.Second)
	if err != nil {
		t.Fatalf("wait past holder release: %v", err)
	}
	l.Release()
}

// TestLockFreedWhenHolderSIGKILLed: the kernel must release the flock
// the instant the holding process dies, so a peer's takeover needs no
// cleanup step.
func TestLockFreedWhenHolderSIGKILLed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	cmd, stdin := spawnHolder(t, path)
	defer stdin.Close()

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	l, err := durable.AcquireLockWait(path, 5*time.Second)
	if err != nil {
		t.Fatalf("lock not freed by holder death: %v", err)
	}
	l.Release()
}

// TestBreakStaleLockDistinguishesDeadFromWedged: a SIGSTOPped holder
// keeps the flock but stops heartbeating. BreakStaleLock must report
// ErrLocked (wedged, kill required) — and succeed after the holder is
// SIGKILLed, exactly the coordinator's takeover sequence.
func TestBreakStaleLockDistinguishesDeadFromWedged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	cmd, stdin := spawnHolder(t, path)
	defer stdin.Close()

	// Freeze the holder: heartbeats stop, flock stays held.
	if err := cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if age, ok := durable.HeartbeatAge(path); ok && age > 50*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never went stale after SIGSTOP")
		}
		time.Sleep(10 * time.Millisecond)
	}
	broken, err := durable.BreakStaleLock(path, 50*time.Millisecond)
	if broken || !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("BreakStaleLock on wedged holder: broken=%v err=%v, want ErrLocked", broken, err)
	}

	// Kill the wedged holder; its flock evaporates and the break wins.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	broken, err = durable.BreakStaleLock(path, 50*time.Millisecond)
	if err != nil || !broken {
		t.Fatalf("BreakStaleLock on dead holder: broken=%v err=%v, want broken", broken, err)
	}
	l, err := durable.AcquireLock(path)
	if err != nil {
		t.Fatalf("acquire after break: %v", err)
	}
	l.Release()
}

// TestBreakStaleLockFreshHeartbeat: a live, heartbeating holder is
// never broken.
func TestBreakStaleLockFreshHeartbeat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	cmd, stdin := spawnHolder(t, path)
	defer func() { stdin.Close(); cmd.Wait() }()

	broken, err := durable.BreakStaleLock(path, time.Hour)
	if broken || err != nil {
		t.Fatalf("BreakStaleLock on fresh heartbeat: broken=%v err=%v, want no-op", broken, err)
	}
}

// TestHeartbeatAgeMissing: no lock file means no heartbeat, not an
// error.
func TestHeartbeatAgeMissing(t *testing.T) {
	if _, ok := durable.HeartbeatAge(filepath.Join(t.TempDir(), "absent")); ok {
		t.Fatal("HeartbeatAge on missing file reported ok")
	}
}

// TestTouchRefreshesHeartbeat: Touch must move the mtime forward so a
// supervisor polling HeartbeatAge sees progress.
func TestTouchRefreshesHeartbeat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	l, err := durable.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	age, ok := durable.HeartbeatAge(path)
	if !ok || age < 30*time.Minute {
		t.Fatalf("backdated heartbeat age = %v ok=%v", age, ok)
	}
	if err := l.Touch(); err != nil {
		t.Fatal(err)
	}
	age, ok = durable.HeartbeatAge(path)
	if !ok || age > time.Minute {
		t.Fatalf("touched heartbeat age = %v ok=%v, want fresh", age, ok)
	}
}
