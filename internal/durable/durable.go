// Package durable provides crash-consistent file output for the PDT
// tools. Every writer in the tree used to write in place with
// os.Create/os.WriteFile, so a crash, kill -9, or full disk could
// leave a torn file at the final path. durable stages output to a
// same-directory temporary file, fsyncs it, renames it over the
// target, and fsyncs the directory — so at every instant the final
// path holds either nothing, the previous complete bytes, or the new
// complete bytes, never a prefix.
//
// The package has three pieces:
//
//   - Writer / WriteFile: the atomic durable write primitive. Close
//     commits; Abort (or a failed commit) removes the staging file and
//     never disturbs existing output.
//   - Lock / AcquireLock: an advisory flock-based lock file so two
//     concurrent writers (e.g. two pdbmerge runs on one output) fail
//     fast instead of interleaving.
//   - Journal: a content-addressed checkpoint store used by
//     pdbio.Merge to make long merges resumable (see journal.go).
//
// All mutating filesystem operations go through the FS interface, in
// the order they hit the disk. That is the kill-point seam: the
// fault-injection harness (internal/faultio's CrashFS) implements FS
// to cut the write stream at a chosen byte or operation and prove the
// never-torn property at every crash site.
package durable

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// File is the writable handle an FS hands out. Sync must flush the
// file's contents to stable storage (fsync).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the mutating filesystem operations the atomic write
// path performs. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens a file with the given flags; with os.O_RDONLY and
	// a directory path it opens the directory for fsync.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// tmpSeq distinguishes staging names within a process; the PID
// distinguishes processes sharing a directory.
var tmpSeq atomic.Int64

// tmpName builds a same-directory staging path for target: rename(2)
// is only atomic within one filesystem, so the temp file must live
// next to its destination.
func tmpName(target string) string {
	dir, base := filepath.Split(target)
	return fmt.Sprintf("%s.%s.tmp.%d.%d", dir, base, os.Getpid(), tmpSeq.Add(1))
}

// Writer stages bytes for one target path. Close commits the staged
// bytes atomically; Abort discards them. Either way the target path
// is never left holding a prefix of the new content.
type Writer struct {
	fsys FS
	f    File
	path string // final target
	tmp  string // same-directory staging file
	done bool   // committed or aborted
}

// Create opens an atomic durable writer for path on the real
// filesystem.
func Create(path string) (*Writer, error) { return CreateFS(OS, path) }

// CreateFS is Create on an explicit filesystem (the kill-point seam).
func CreateFS(fsys FS, path string) (*Writer, error) {
	tmp := tmpName(path)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: staging %s: %w", path, err)
	}
	return &Writer{fsys: fsys, f: f, path: path, tmp: tmp}, nil
}

// Write appends to the staging file.
func (w *Writer) Write(p []byte) (int, error) { return w.f.Write(p) }

// Close commits: fsync the staging file, close it, rename it over the
// target, and fsync the directory so the rename itself is durable. On
// any failure the staging file is removed and the target is left
// untouched.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		w.fsys.Remove(w.tmp)
		return fmt.Errorf("durable: sync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.fsys.Remove(w.tmp)
		return fmt.Errorf("durable: close %s: %w", w.path, err)
	}
	if err := w.fsys.Rename(w.tmp, w.path); err != nil {
		w.fsys.Remove(w.tmp)
		return fmt.Errorf("durable: commit %s: %w", w.path, err)
	}
	if err := syncDir(w.fsys, filepath.Dir(w.path)); err != nil {
		// The rename has already happened; the target holds the new
		// bytes but their directory entry may not survive a power cut.
		return fmt.Errorf("durable: sync dir of %s: %w", w.path, err)
	}
	return nil
}

// Abort discards the staged bytes without touching the target. Safe
// to call after Close (it becomes a no-op), so callers can
// `defer w.Abort()` and commit explicitly.
func (w *Writer) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	cerr := w.f.Close()
	rerr := w.fsys.Remove(w.tmp)
	return errors.Join(cerr, rerr)
}

// WriteFile atomically and durably replaces path with data: the
// crash-consistent os.WriteFile.
func WriteFile(path string, data []byte, perm fs.FileMode) error {
	return WriteFileFS(OS, path, data, perm)
}

// WriteFileFS is WriteFile on an explicit filesystem.
func WriteFileFS(fsys FS, path string, data []byte, perm fs.FileMode) error {
	tmp := tmpName(path)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, perm)
	if err != nil {
		return fmt.Errorf("durable: staging %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: commit %s: %w", path, err)
	}
	if err := syncDir(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("durable: sync dir of %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives a
// power cut. Filesystems that refuse directory fsync (some network
// mounts) degrade gracefully: EINVAL/ENOTSUP are ignored.
func syncDir(fsys FS, dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, errors.ErrUnsupported) &&
		!errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		return serr
	}
	return cerr
}
