package durable

import (
	"errors"
	"os"
	"time"
)

// ErrLocked is the sentinel AcquireLock returns when another holder
// has the lock; callers report it as "already running" (pdbmerge exits
// cliutil.ExitLocked) rather than as an I/O failure.
var ErrLocked = errors.New("lock held by another process")

// Lock is a held advisory lock file. The zero value is released.
type Lock struct {
	f    *os.File
	path string
}

// Path reports the lock file's location.
func (l *Lock) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Touch refreshes the lock file's modification time — the heartbeat a
// supervised holder emits so a peer can distinguish "alive but slow"
// from "dead or wedged". The shard-merge lease protocol calls it every
// heartbeat interval; HeartbeatAge reads it back.
func (l *Lock) Touch() error {
	if l == nil || l.f == nil {
		return errors.New("durable: touch on released lock")
	}
	now := time.Now()
	return os.Chtimes(l.path, now, now)
}

// HeartbeatAge reports how long ago the lock file at path was last
// touched. A missing file is not an error: it reports ok == false,
// meaning no holder ever got far enough to matter.
func HeartbeatAge(path string) (age time.Duration, ok bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, false
	}
	return time.Since(fi.ModTime()), true
}

// AcquireLockWait is the blocking form of AcquireLock: it polls with
// doubling backoff until the lock is acquired or wait has elapsed,
// then returns the final ErrLocked. A holder that dies mid-wait frees
// the flock instantly (the kernel drops it), so takeover latency is
// one poll interval, not the full deadline.
func AcquireLockWait(path string, wait time.Duration) (*Lock, error) {
	deadline := time.Now().Add(wait)
	backoff := 2 * time.Millisecond
	for {
		l, err := AcquireLock(path)
		if err == nil || !errors.Is(err, ErrLocked) {
			return l, err
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// BreakStaleLock reclaims the lock at path when its holder looks dead:
// the heartbeat mtime is older than staleAfter AND the lock is
// acquirable (a flock holder that died has already released it; see
// the platform notes on AcquireLock). It returns (true, nil) when the
// stale lock was broken — the caller may acquire it normally now —
// (false, nil) when the lock is absent or its heartbeat is fresh, and
// ErrLocked when the heartbeat is stale but a live process still holds
// the flock (a wedged holder: the caller must kill it first, which
// releases the flock).
func BreakStaleLock(path string, staleAfter time.Duration) (bool, error) {
	age, ok := HeartbeatAge(path)
	if !ok || age < staleAfter {
		return false, nil
	}
	return reclaimStale(path, age)
}
