package durable

import (
	"errors"
	"os"
)

// ErrLocked is the sentinel AcquireLock returns when another holder
// has the lock; callers report it as "already running" (pdbmerge exits
// cliutil.ExitLocked) rather than as an I/O failure.
var ErrLocked = errors.New("lock held by another process")

// Lock is a held advisory lock file. The zero value is released.
type Lock struct {
	f    *os.File
	path string
}

// Path reports the lock file's location.
func (l *Lock) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}
