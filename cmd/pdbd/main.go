// pdbd is the resident PDB service: it loads and merges a corpus of
// program databases once, then answers graph queries, lint findings,
// tree listings, and HTML documentation pages over versioned HTTP
// endpoints for many concurrent clients — the daemon face of the same
// corpus API (internal/corpus) the command-line tools use, so every
// response body is byte-identical to the corresponding CLI output.
//
// Usage:
//
//	pdbd [-addr :7245] [-cache-dir dir] [-mem-entries N] [-html-src]
//	     [-j N] [-strict] [-lenient] [-quarantine dir] [-retry N]
//	     [-checkpoint-dir dir] [-resume] [-metrics file|-] [-trace]
//	     file.pdb [file.pdb ...]
//
// Endpoints (all JSON errors, schema_version-stamped):
//
//	GET  /v1/healthz                       readiness: 200 ok once the corpus
//	                                       is loaded, 503 loading/reloading
//	GET  /v1/livez                         liveness: 200 whenever the
//	                                       process serves HTTP at all
//	GET  /v1/metrics                       obs counters/spans snapshot
//	GET  /v1/lookup?node=SPEC              resolve node specs
//	GET  /v1/query/{cmd}                   deps, rdeps, somepath, reaches,
//	                                       whatinputs, affected, nodes
//	GET  /v1/lint?passes=a,b&changed=f.cc  analysis findings
//	GET  /v1/tree?files&classes&calls      hierarchy trees
//	GET  /v1/html/{page}                   documentation pages
//	POST /v1/reload                        re-open the corpus, invalidate
//	                                       only affected cache entries
//	POST /v1/profile/ingest                streamed TAU profile events
//	                                       (taurun -stream)
//	GET  /v1/profile                       live aggregated profile JSON
//	GET  /v1/profile/html                  live dashboard fragment
//
// SIGHUP triggers the same reload as POST /v1/reload; SIGINT/SIGTERM
// shut down gracefully. With -cache-dir, responses and lint findings
// persist across restarts in content-addressed journals.
//
// Exit codes: 0 clean shutdown, 3 startup or serve failure.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdt/internal/cliutil"
	"pdt/internal/pdbd"
)

func main() {
	t := cliutil.New("pdbd",
		"pdbd [-addr :7245] [-cache-dir dir] [-mem-entries N] [-html-src] file.pdb [file.pdb ...]")
	addr := t.Flags.String("addr", ":7245", "listen address")
	cacheDir := t.Flags.String("cache-dir", "", "disk cache directory for responses and lint findings (default: memory-only)")
	memEntries := t.Flags.Int("mem-entries", 0, "in-memory response cache capacity in entries (0 = 4096)")
	htmlSrc := t.Flags.Bool("html-src", false, "include source listings in /v1/html pages")
	cf := t.CorpusFlags().WithStrict().WithCheckpoint()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, -1)

	cfg := pdbd.Config{
		Paths:      t.Flags.Args(),
		Corpus:     cf.Options(),
		CacheDir:   *cacheDir,
		MemEntries: *memEntries,
		HTMLSource: *htmlSrc,
		Metrics:    t.Obs(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Listen BEFORE loading: a large corpus can take a while to merge,
	// and orchestrators probe the port as soon as the process starts.
	// The deferred server answers /v1/livez 200 and /v1/healthz 503
	// "loading" until the corpus lands, then flips ready.
	srv, err := pdbd.NewDeferred(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		t.Fatalf("%v", err)
	}
	fmt.Fprintf(t.Stderr, "pdbd: listening on %s; loading %d input(s)\n", ln.Addr(), len(cfg.Paths))

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			sum, err := srv.Reload(context.Background())
			if err != nil {
				fmt.Fprintf(t.Stderr, "pdbd: reload failed: %v\n", err)
				continue
			}
			fmt.Fprintf(t.Stderr, "pdbd: reloaded (fingerprint %.12s, %d changed units, cache carried %d dropped %d)\n",
				sum.Fingerprint, len(sum.ChangedUnits), sum.CacheCarried, sum.CacheDropped)
		}
	}()

	// The hardened server: header/read/write/idle timeouts so one slow
	// client (slowloris) can't pin connections forever. The ingest body
	// cap lives in the handler (http.MaxBytesReader).
	hs := srv.HTTPServer()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	if err := srv.LoadCorpus(ctx); err != nil {
		_ = hs.Close()
		t.Fatalf("%v", err)
	}
	fmt.Fprintf(t.Stderr, "pdbd: ready (fingerprint %.12s)\n", srv.Fingerprint())

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		fmt.Fprintln(t.Stderr, "pdbd: shut down")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("%v", err)
		}
	}
	t.FlushObs()
	t.Exit(cf.Exit(cliutil.ExitOK))
}
