// pdbquery runs dependency-graph queries over a program database —
// the PDB seen as a graph of files, classes, templates, and routines
// connected by include, inherit, instantiate, call, and definition
// edges (internal/query).
//
// Usage:
//
//	pdbquery [-format=text|json] [-depth N] [-lenient] [-retry N]
//	         [-metrics file|-] [-trace] file.pdb command [arg ...]
//
// Commands:
//
//	nodes                    list every graph node
//	deps <node> ...          transitive dependencies of the nodes
//	revdeps <node> ...       transitive dependents of the nodes
//	somepath <from> <to>     one shortest dependency chain
//	reaches <from> <to>      whether from depends on to (prints true/false)
//	whatinputs <file> ...    everything that takes the files as inputs
//	affected <file> ...      transitive invalidation set of changed files
//
// Nodes are named "kind:name" ("file:main.cc", "class:Stack<int>",
// "routine:main()"), by bare name, or — for files — by path base.
// deps/revdeps accept ambiguous names (all matches seed the walk);
// somepath/reaches require each endpoint to resolve uniquely.
//
// Exit codes: 0 success, 1 somepath/reaches found no path, 3 usage or
// I/O failure, 4 completed but -lenient recovered past malformed input.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"pdt/internal/cliutil"
	"pdt/internal/ductape"
	"pdt/internal/pdbio"
	"pdt/internal/query"
)

// ExitNoPath is the pdbquery-specific finding code: the somepath or
// reaches query completed but found no connection.
const ExitNoPath = 1

func main() {
	t := cliutil.New("pdbquery",
		"pdbquery [-format=text|json] [-depth N] file.pdb command [arg ...]")
	format := t.FormatFlag("text", "json")
	depth := t.Flags.Int("depth", 0, "bound deps/revdeps to this many hops (0 = unbounded)")
	workers := t.WorkersFlag()
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 2, -1)

	loadOpts := append([]pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())},
		res.Options()...)

	var g *query.Graph
	loadOpts = append(loadOpts, pdbio.WithPostLoad(func(db *ductape.PDB) {
		sp := t.Obs().StartSpan("graph.build")
		g = query.New(db)
		sp.AddItems(int64(g.Len()))
		sp.End()
	}))
	if _, err := pdbio.Load(context.Background(), t.Flags.Arg(0), loadOpts...); err != nil {
		t.Fatalf("%v", err)
	}
	t.Obs().Counter("query.nodes").Add(int64(g.Len()))
	t.Obs().Counter("query.edges").Add(int64(g.EdgeCount()))

	cmd, args := t.Flags.Arg(1), t.Flags.Args()[2:]
	code := cliutil.ExitOK
	var err error
	switch cmd {
	case "nodes":
		if len(args) != 0 {
			t.Usage()
		}
		err = writeNodes(os.Stdout, *format, g.Nodes())
	case "deps":
		err = writeNodes(os.Stdout, *format, g.Deps(resolveAll(t, g, args), *depth))
	case "revdeps":
		err = writeNodes(os.Stdout, *format, g.RevDeps(resolveAll(t, g, args), *depth))
	case "whatinputs":
		err = writeNodes(os.Stdout, *format, g.WhatInputs(resolveFiles(t, g, args)))
	case "somepath", "reaches":
		if len(args) != 2 {
			t.Usage()
		}
		from, to := resolveOne(t, g, args[0]), resolveOne(t, g, args[1])
		path := g.SomePath(from, to)
		if path == nil {
			code = ExitNoPath
		}
		if cmd == "reaches" {
			err = writeBool(os.Stdout, *format, path != nil)
		} else {
			err = writePath(os.Stdout, *format, path)
		}
	case "affected":
		if len(args) == 0 {
			t.Usage()
		}
		set := g.Affected(args)
		t.Obs().Counter("query.affected_units").Add(int64(len(set.Units())))
		err = writeAffected(os.Stdout, *format, set)
	default:
		t.Fatalf("unknown command %q", cmd)
	}
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(code))
}

// resolveAll resolves every spec, requiring at least one node each;
// ambiguous specs contribute all their matches.
func resolveAll(t *cliutil.Tool, g *query.Graph, specs []string) []*query.Node {
	if len(specs) == 0 {
		t.Usage()
	}
	var out []*query.Node
	for _, spec := range specs {
		ns := g.Lookup(spec)
		if len(ns) == 0 {
			t.Fatalf("no node matches %q", spec)
		}
		out = append(out, ns...)
	}
	return out
}

// resolveFiles is resolveAll restricted to file nodes.
func resolveFiles(t *cliutil.Tool, g *query.Graph, specs []string) []*query.Node {
	nodes := resolveAll(t, g, specs)
	for _, n := range nodes {
		if n.Kind != query.KindFile {
			t.Fatalf("whatinputs takes files, %q is a %s", n.Name, n.Kind)
		}
	}
	return nodes
}

// resolveOne resolves a spec that must name exactly one node.
func resolveOne(t *cliutil.Tool, g *query.Graph, spec string) *query.Node {
	ns := g.Lookup(spec)
	switch len(ns) {
	case 1:
		return ns[0]
	case 0:
		t.Fatalf("no node matches %q", spec)
	default:
		var keys []string
		for _, n := range ns {
			keys = append(keys, n.Key())
		}
		t.Fatalf("%q is ambiguous: %s", spec, strings.Join(keys, ", "))
	}
	return nil
}

type nodeJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func marshalNodes(ns []*query.Node) []nodeJSON {
	out := make([]nodeJSON, 0, len(ns))
	for _, n := range ns {
		out = append(out, nodeJSON{Kind: string(n.Kind), Name: n.Name})
	}
	return out
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeNodes(w io.Writer, format string, ns []*query.Node) error {
	if format == "json" {
		return writeJSON(w, marshalNodes(ns))
	}
	for _, n := range ns {
		if _, err := fmt.Fprintln(w, n.Key()); err != nil {
			return err
		}
	}
	return nil
}

func writeBool(w io.Writer, format string, v bool) error {
	if format == "json" {
		return writeJSON(w, map[string]bool{"reaches": v})
	}
	_, err := fmt.Fprintln(w, v)
	return err
}

func writePath(w io.Writer, format string, path []query.Edge) error {
	if format == "json" {
		if path == nil {
			path = []query.Edge{}
		}
		return writeJSON(w, path)
	}
	if path == nil {
		_, err := fmt.Fprintln(w, "no path")
		return err
	}
	for i, e := range path {
		if i == 0 {
			if _, err := fmt.Fprintln(w, e.From); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  -%s-> %s\n", e.Kind, e.To); err != nil {
			return err
		}
	}
	return nil
}

func writeAffected(w io.Writer, format string, set *query.AffectedSet) error {
	if format == "json" {
		units := set.Units()
		if units == nil {
			units = []string{}
		}
		return writeJSON(w, struct {
			Units []string   `json:"units"`
			Nodes []nodeJSON `json:"nodes"`
		}{Units: units, Nodes: marshalNodes(set.Nodes())})
	}
	for _, n := range set.Nodes() {
		if _, err := fmt.Fprintln(w, n.Key()); err != nil {
			return err
		}
	}
	return nil
}
