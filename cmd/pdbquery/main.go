// pdbquery runs dependency-graph queries over a program database —
// the PDB seen as a graph of files, classes, templates, and routines
// connected by include, inherit, instantiate, call, and definition
// edges (internal/query), through the shared corpus API
// (internal/corpus) the pdbd daemon also serves.
//
// Usage:
//
//	pdbquery [-format=text|json] [-depth N] [-lenient] [-retry N]
//	         [-metrics file|-] [-trace] file.pdb command [arg ...]
//
// Commands:
//
//	nodes                    list every graph node
//	lookup <spec> ...        list the nodes matching the specs
//	deps <node> ...          transitive dependencies of the nodes
//	revdeps <node> ...       transitive dependents of the nodes
//	somepath <from> <to>     one shortest dependency chain
//	reaches <from> <to>      whether from depends on to (prints true/false)
//	whatinputs <file> ...    everything that takes the files as inputs
//	affected <file> ...      transitive invalidation set of changed files
//
// Nodes are named "kind:name" ("file:main.cc", "class:Stack<int>",
// "routine:main()"), by bare name, or — for files — by path base.
// deps/revdeps accept ambiguous names (all matches seed the walk);
// somepath/reaches require each endpoint to resolve uniquely.
//
// Exit codes: 0 success, 1 somepath/reaches found no path, 3 usage or
// I/O failure, 4 completed but -lenient recovered past malformed input.
package main

import (
	"context"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/corpus"
)

func main() {
	t := cliutil.New("pdbquery",
		"pdbquery [-format=text|json] [-depth N] file.pdb command [arg ...]")
	format := t.FormatFlag("text", "json")
	depth := t.Flags.Int("depth", 0, "bound deps/revdeps to this many hops (0 = unbounded)")
	cf := t.CorpusFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 2, -1)

	ctx := context.Background()
	c, err := corpus.Open(ctx, []string{t.Flags.Arg(0)}, cf.Options())
	if err != nil {
		t.Fatalf("%v", err)
	}

	res, err := c.Query(ctx, corpus.QueryRequest{
		Command: t.Flags.Arg(1),
		Args:    t.Flags.Args()[2:],
		Depth:   *depth,
	})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := res.Write(os.Stdout, *format); err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(cf.Exit(res.ExitCode()))
}
