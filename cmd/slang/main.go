// slang runs a slang script, optionally bridged to a C++ library via
// SILOON bindings (§4.2, Figure 8).
//
// Usage:
//
//	slang script.slang                        # plain script
//	slang -lib lib.cpp script.slang           # script with library access
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/script"
	"pdt/internal/siloon"
)

func main() {
	lib := flag.String("lib", "", "C++ library to bridge (compiled and wrapped automatically)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slang [-lib lib.cpp] script.slang")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "slang: %v\n", err)
		os.Exit(1)
	}

	if *lib == "" {
		it := script.NewInterp(os.Stdout)
		if err := it.Run(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "slang: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res, err := core.CompileFile(fs, *lib, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slang: %v\n", err)
		os.Exit(1)
	}
	if res.HasErrors() {
		for _, d := range res.Diagnostics {
			fmt.Fprintf(os.Stderr, "%v\n", d)
		}
		os.Exit(1)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	bindings := siloon.Generate(db, siloon.Options{IncludeFree: true})
	_, sc, err := siloon.NewBridge(res.Unit, bindings, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slang: %v\n", err)
		os.Exit(1)
	}
	if err := siloon.RunScript(sc, bindings, string(src)); err != nil {
		fmt.Fprintf(os.Stderr, "slang: %v\n", err)
		os.Exit(1)
	}
}
