// taurun runs the complete TAU pipeline on a program: parse to a PDB,
// automatically instrument the source, recompile, execute on the PDT
// interpreter, and print the collected profile (the paper's Figure 7
// displays).
//
// Usage:
//
//	taurun [-wall] [-bars] [-I dir]... [-metrics file|-] file.cpp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pdt/internal/cliutil"
	"pdt/internal/obs"
	"pdt/internal/tau"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var includes stringList
	wall := flag.Bool("wall", false, "use wall-clock time instead of the deterministic virtual clock")
	bars := flag.Bool("bars", false, "also print the bar-chart overview")
	callpath := flag.Bool("callpath", false, "also print the caller/callee breakdown")
	metrics := flag.String("metrics", "",
		"export the profile as a JSON obs snapshot to this file (- = standard error)")
	flag.Var(&includes, "I", "add an include search directory (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taurun [-wall] [-bars] file.cpp")
		os.Exit(2)
	}

	mainPath := flag.Arg(0)
	files := map[string]string{}
	// Load the main file and sibling headers/sources from its directory
	// so local includes resolve.
	dir := filepath.Dir(mainPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
		os.Exit(1)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".cpp" && ext != ".h" && ext != ".hpp" && ext != ".cc" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
			os.Exit(1)
		}
		files[e.Name()] = string(b)
	}
	mainName := filepath.Base(mainPath)
	if _, ok := files[mainName]; !ok {
		fmt.Fprintf(os.Stderr, "taurun: %s not found\n", mainPath)
		os.Exit(1)
	}

	mode := tau.VirtualClock
	if *wall {
		mode = tau.WallClock
	}
	res, err := tau.ProfileSource(files, mainName, mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	fmt.Printf("\n[program exited with code %d]\n\n", res.ExitCode)
	if *bars {
		tau.WriteBars(os.Stdout, res.Runtime, 40)
		fmt.Println()
	}
	tau.WriteReport(os.Stdout, res.Runtime)
	if *callpath {
		fmt.Println()
		tau.WriteCallPaths(os.Stdout, res.Runtime)
	}
	if *metrics != "" {
		m := obs.New("taurun")
		res.Runtime.ExportObs(m)
		// The snapshot goes through the shared cliutil.Create seam (a
		// crash-consistent durable write by default): a full disk
		// surfaces on commit instead of exiting 0 with a truncated
		// snapshot, and the write/close failure tests cover it.
		err := func() error {
			if *metrics == "-" {
				return m.WriteJSON(os.Stderr)
			}
			return cliutil.WriteOutput(*metrics, m.WriteJSON)
		}()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
			os.Exit(1)
		}
	}
}
