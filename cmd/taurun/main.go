// taurun runs the complete TAU pipeline on a program: parse to a PDB,
// automatically instrument the source, recompile, execute on the PDT
// interpreter, and print the collected profile (the paper's Figure 7
// displays).
//
// With -stream, timer samples and call edges are also emitted live to
// a pdbd daemon's /v1/profile/ingest endpoint as the program runs,
// feeding the daemon's aggregated /v1/profile dashboards. The emitter
// is buffered and non-blocking: a slow or absent daemon never stalls
// the profiled program — overflow events are dropped and counted.
//
// Usage:
//
//	taurun [-wall] [-bars] [-callpath] [-I dir]... [-metrics file|-]
//	       [-stream addr] file.cpp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pdt/internal/cliutil"
	"pdt/internal/obs"
	"pdt/internal/tau"
	"pdt/internal/taustream"
)

const usage = "usage: taurun [-wall] [-bars] [-callpath] [-I dir]... [-metrics file|-] [-stream addr] file.cpp"

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// sourceExts are the file extensions loaded from the main file's
// directory and every -I directory.
var sourceExts = map[string]bool{".cpp": true, ".h": true, ".hpp": true, ".cc": true}

// loadDir reads dir's source files into files, keyed by base name.
// Existing keys are kept: the main file's directory is loaded first,
// so its entries win any name collision with an -I directory (and
// earlier -I directories win over later ones).
func loadDir(dir string, files map[string]string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !sourceExts[filepath.Ext(e.Name())] {
			continue
		}
		if _, ok := files[e.Name()]; ok {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		files[e.Name()] = string(b)
	}
	return nil
}

func main() {
	var includes stringList
	wall := flag.Bool("wall", false, "use wall-clock time instead of the deterministic virtual clock")
	bars := flag.Bool("bars", false, "also print the bar-chart overview")
	callpath := flag.Bool("callpath", false, "also print the caller/callee breakdown")
	metrics := flag.String("metrics", "",
		"export the profile as a JSON obs snapshot to this file (- = standard error)")
	stream := flag.String("stream", "",
		"stream profile events to a pdbd daemon at this address (host:port or URL)")
	flag.Var(&includes, "I", "add an include search directory (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}

	mainPath := flag.Arg(0)
	files := map[string]string{}
	// Load the main file and sibling headers/sources from its
	// directory, then each -I directory, so local and search-path
	// includes resolve. Main-directory entries win name collisions.
	if err := loadDir(filepath.Dir(mainPath), files); err != nil {
		fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
		os.Exit(1)
	}
	for _, dir := range includes {
		if err := loadDir(dir, files); err != nil {
			fmt.Fprintf(os.Stderr, "taurun: -I %s: %v\n", dir, err)
			os.Exit(1)
		}
	}
	mainName := filepath.Base(mainPath)
	if _, ok := files[mainName]; !ok {
		fmt.Fprintf(os.Stderr, "taurun: %s not found\n", mainPath)
		os.Exit(1)
	}

	mode := tau.VirtualClock
	unit := taustream.UnitSteps
	if *wall {
		mode = tau.WallClock
		unit = taustream.UnitNanos
	}

	var m *obs.Metrics
	if *metrics != "" {
		m = obs.New("taurun")
	}

	var client *taustream.Client
	var sink tau.Sink
	if *stream != "" {
		client = taustream.Dial(*stream, taustream.Options{Unit: unit, Metrics: m})
		sink = client
	}

	res, err := tau.ProfileSourceTo(files, mainName, mode, sink)
	if err != nil {
		if client != nil {
			_ = client.Close()
		}
		fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
		os.Exit(1)
	}
	if client != nil {
		// Flush the stream before printing: a dead daemon is a warning,
		// not a failure — the one-shot report below is unaffected.
		if err := client.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "taurun: stream: %v\n", err)
		}
		if n := client.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "taurun: stream: %d event(s) dropped (buffer overflow)\n", n)
		}
	}
	fmt.Print(res.Output)
	fmt.Printf("\n[program exited with code %d]\n\n", res.ExitCode)
	if *bars {
		tau.WriteBars(os.Stdout, res.Runtime, 40)
		fmt.Println()
	}
	tau.WriteReport(os.Stdout, res.Runtime)
	if *callpath {
		fmt.Println()
		tau.WriteCallPaths(os.Stdout, res.Runtime)
	}
	if *metrics != "" {
		res.Runtime.ExportObs(m)
		// The snapshot goes through the shared cliutil.Create seam (a
		// crash-consistent durable write by default): a full disk
		// surfaces on commit instead of exiting 0 with a truncated
		// snapshot, and the write/close failure tests cover it.
		err := func() error {
			if *metrics == "-" {
				return m.WriteJSON(os.Stderr)
			}
			return cliutil.WriteOutput(*metrics, m.WriteJSON)
		}()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taurun: %v\n", err)
			os.Exit(1)
		}
	}
}
