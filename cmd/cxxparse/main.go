// cxxparse is the PDT frontend driver: it compiles a C++ source file
// (preprocess, parse, semantic analysis with template instantiation),
// runs the IL Analyzer over the resulting IL, and writes the program
// database.
//
// Usage:
//
//	cxxparse [-o out.pdb] [-I dir]... [-D name[=value]]... [-eager]
//	         [-direct-origin] [-v] file.cpp
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/core"
	"pdt/internal/cpp/sema"
	"pdt/internal/ilanalyzer"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var includes, defines stringList
	out := flag.String("o", "", "output PDB file (default: stdout)")
	eager := flag.Bool("eager", false, "instantiate all template members (EDG automatic mode) instead of used-only")
	direct := flag.Bool("direct-origin", false, "link instantiations to templates via direct IL IDs instead of the location scan")
	verbose := flag.Bool("v", false, "print frontend statistics")
	check := flag.Bool("check", false, "validate the referential integrity of the generated PDB")
	flag.Var(&includes, "I", "add an include search directory (repeatable)")
	flag.Var(&defines, "D", "predefine a macro NAME or NAME=VALUE (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cxxparse [options] file.cpp")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := core.Options{IncludePaths: includes, Defines: defines}
	if *eager {
		opts.Mode = sema.Eager
	}
	fs := core.NewFileSet(opts)
	res, err := core.CompileFile(fs, flag.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxxparse: %v\n", err)
		os.Exit(1)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%v\n", d)
	}
	if res.HasErrors() {
		os.Exit(1)
	}

	analyzerOpts := ilanalyzer.Options{}
	if *direct {
		analyzerOpts.TemplateOrigin = ilanalyzer.OriginDirect
	}
	db := ilanalyzer.Analyze(res.Unit, analyzerOpts)

	if *check {
		if errs := db.Validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "cxxparse: integrity: %v\n", e)
			}
			os.Exit(1)
		}
	}

	if *verbose {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "cxxparse: %d classes (%d instantiations), %d routines (%d instantiations), %d bodies analyzed, %d types, %d PDB items\n",
			st.Classes, st.ClassInsts, st.Routines, st.RoutineInsts,
			st.BodiesAnalyzed, st.Types, db.ItemCount())
	}

	// Output goes through the shared cliutil.Create seam (by default a
	// crash-consistent durable write): a full disk surfaces on commit
	// instead of exiting 0 with a truncated PDB, and a killed run
	// never leaves a torn file at -o.
	if err := cliutil.WriteOutput(*out, db.Write); err != nil {
		fmt.Fprintf(os.Stderr, "cxxparse: %v\n", err)
		os.Exit(1)
	}
}
