// pdbhtml automatically creates web-based documentation that enables
// navigation of code via HTML links (Table 2), through the shared
// corpus API (internal/corpus) the pdbd daemon also serves.
//
// Usage:
//
//	pdbhtml [-d outdir] [-nosrc] [-j N] [-lenient] [-quarantine dir]
//	        [-retry N] [-metrics file|-] [-trace] file.pdb
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"fmt"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/corpus"
)

func main() {
	t := cliutil.New("pdbhtml", "pdbhtml [-d outdir] [-nosrc] [-j N] [-metrics file|-] [-trace] file.pdb")
	dir := t.Flags.String("d", "pdbhtml-out", "output directory")
	noSrc := t.Flags.Bool("nosrc", false, "do not generate source listings")
	cf := t.CorpusFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)

	c, err := corpus.Open(context.Background(), []string{t.Flags.Arg(0)}, cf.Options())
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp := t.Obs().StartSpan("generate")
	err = c.GenerateHTML(*dir, !*noSrc)
	sp.End()
	if err != nil {
		t.Fatalf("%v", err)
	}
	fmt.Printf("pdbhtml: wrote documentation to %s/\n", *dir)
	t.FlushObs()
	t.Exit(cf.Exit(cliutil.ExitOK))
}
