// pdbhtml automatically creates web-based documentation that enables
// navigation of code via HTML links (Table 2).
//
// Usage:
//
//	pdbhtml [-d outdir] [-nosrc] [-j N] [-lenient] [-quarantine dir]
//	        [-retry N] [-metrics file|-] [-trace] file.pdb
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"fmt"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/pdbio"
	"pdt/internal/tools/html"
)

func main() {
	t := cliutil.New("pdbhtml", "pdbhtml [-d outdir] [-nosrc] [-j N] [-metrics file|-] [-trace] file.pdb")
	dir := t.Flags.String("d", "pdbhtml-out", "output directory")
	noSrc := t.Flags.Bool("nosrc", false, "do not generate source listings")
	workers := t.WorkersFlag()
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)

	opts := append([]pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())},
		res.Options()...)
	db, err := pdbio.Load(context.Background(), t.Flags.Arg(0), opts...)
	if err != nil {
		t.Fatalf("%v", err)
	}
	loader := html.DiskLoader
	if *noSrc {
		loader = nil
	}
	sp := t.Obs().StartSpan("generate")
	if err := html.Generate(db, *dir, loader); err != nil {
		t.Fatalf("%v", err)
	}
	sp.End()
	fmt.Printf("pdbhtml: wrote documentation to %s/\n", *dir)
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}
