// pdbhtml automatically creates web-based documentation that enables
// navigation of code via HTML links (Table 2).
//
// Usage:
//
//	pdbhtml [-d outdir] file.pdb
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/ductape"
	"pdt/internal/tools/html"
)

func main() {
	dir := flag.String("d", "pdbhtml-out", "output directory")
	noSrc := flag.Bool("nosrc", false, "do not generate source listings")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdbhtml [-d outdir] file.pdb")
		os.Exit(2)
	}
	db, err := ductape.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdbhtml: %v\n", err)
		os.Exit(1)
	}
	loader := html.DiskLoader
	if *noSrc {
		loader = nil
	}
	if err := html.Generate(db, *dir, loader); err != nil {
		fmt.Fprintf(os.Stderr, "pdbhtml: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pdbhtml: wrote documentation to %s/\n", *dir)
}
