// siloongen generates SILOON bindings (§4.2) for a C++ library: a
// slang wrapper module and the C++ registration glue, derived from the
// library's program database.
//
// Usage:
//
//	siloongen [-d outdir] [-free] [-class name]... file.cpp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/ilanalyzer"
	"pdt/internal/siloon"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var classes stringList
	dir := flag.String("d", "siloon-out", "output directory")
	free := flag.Bool("free", true, "also wrap free functions")
	list := flag.Bool("list", false, "print the binding table instead of writing files")
	templates := flag.Bool("templates", false, "list class templates and their instantiations (PDT extension, paper §6)")
	var instantiate stringList
	flag.Var(&instantiate, "instantiate", "generate an explicit instantiation, e.g. 'Stack:double' (repeatable; implies -templates output)")
	flag.Var(&classes, "class", "wrap only the named class (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: siloongen [-d outdir] file.cpp")
		os.Exit(2)
	}
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res, err := core.CompileFile(fs, flag.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siloongen: %v\n", err)
		os.Exit(1)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%v\n", d)
	}
	if res.HasErrors() {
		os.Exit(1)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	if *templates || len(instantiate) > 0 {
		fmt.Print(siloon.DescribeTemplates(siloon.ListClassTemplates(db)))
		if len(instantiate) > 0 {
			var reqs []siloon.InstantiationRequest
			for _, spec := range instantiate {
				name, args, ok := strings.Cut(spec, ":")
				if !ok {
					fmt.Fprintf(os.Stderr, "siloongen: bad -instantiate %q (want Template:arg[,arg])\n", spec)
					os.Exit(2)
				}
				reqs = append(reqs, siloon.InstantiationRequest{
					Template: name, Args: strings.Split(args, ","),
				})
			}
			fmt.Println("\n// add this translation unit to the library and re-run siloongen:")
			fmt.Print(siloon.GenerateInstantiations(reqs))
		}
		return
	}
	b := siloon.Generate(db, siloon.Options{Classes: classes, IncludeFree: *free})
	if *list {
		fmt.Print(b.Describe())
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "siloongen: %v\n", err)
		os.Exit(1)
	}
	// Atomic durable writes: a killed run leaves each generated file
	// either absent, its previous content, or complete — never torn.
	if err := durable.WriteFile(filepath.Join(*dir, "bindings.slang"), []byte(b.WrapperScript), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "siloongen: %v\n", err)
		os.Exit(1)
	}
	if err := durable.WriteFile(filepath.Join(*dir, "glue.cpp"), []byte(b.GlueSource), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "siloongen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("siloongen: wrote %s/bindings.slang and %s/glue.cpp (%d bindings)\n",
		*dir, *dir, len(b.Items))
}
