// pdbconv converts files in the compact PDB format into a more
// readable format (Table 2), or translates between the on-disk
// encodings.
//
// Usage:
//
//	pdbconv [-o out.txt] [-to text|ascii|binary] [-j N] [-lenient]
//	        [-quarantine dir] [-retry N] [-metrics file|-] [-trace] file.pdb
//
// -to selects the output: "text" (default) is the human-readable
// report; "ascii" re-emits the line-oriented PDB encoding; "binary"
// emits the PDTB binary container. The input encoding is always
// auto-detected, so -to=binary converts an ASCII database to binary
// and -to=ascii converts it back.
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"io"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/pdbio"
	"pdt/internal/tools/conv"
)

func main() {
	t := cliutil.New("pdbconv", "pdbconv [-o out.txt] [-to text|ascii|binary] [-j N] [-lenient] [-quarantine dir] [-retry N] [-metrics file|-] [-trace] file.pdb")
	out := t.OutFlag()
	to := t.Flags.String("to", "text", "output form: text (readable report), ascii, or binary")
	workers := t.WorkersFlag()
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)
	if *to != "text" && *to != "ascii" && *to != "binary" {
		t.Fatalf("invalid -to=%s (want text, ascii, or binary)", *to)
	}

	opts := append([]pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())},
		res.Options()...)
	db, err := pdbio.Load(context.Background(), t.Flags.Arg(0), opts...)
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp := t.Obs().StartSpan("convert")
	err = t.WithOutput(*out, func(w io.Writer) error {
		switch *to {
		case "ascii":
			return db.Write(w)
		case "binary":
			return db.WriteBinary(w)
		default:
			conv.Convert(w, db)
			return nil
		}
	})
	sp.End()
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}
