// pdbconv converts files in the compact PDB format into a more
// readable format (Table 2).
//
// Usage:
//
//	pdbconv [-o out.txt] [-j N] [-lenient] [-quarantine dir] [-retry N]
//	        [-metrics file|-] [-trace] file.pdb
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"io"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/pdbio"
	"pdt/internal/tools/conv"
)

func main() {
	t := cliutil.New("pdbconv", "pdbconv [-o out.txt] [-j N] [-lenient] [-quarantine dir] [-retry N] [-metrics file|-] [-trace] file.pdb")
	out := t.OutFlag()
	workers := t.WorkersFlag()
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)

	opts := append([]pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())},
		res.Options()...)
	db, err := pdbio.Load(context.Background(), t.Flags.Arg(0), opts...)
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp := t.Obs().StartSpan("convert")
	err = t.WithOutput(*out, func(w io.Writer) error {
		conv.Convert(w, db)
		return nil
	})
	sp.End()
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}
