// pdbconv converts files in the compact PDB format into a more
// readable format (Table 2).
//
// Usage:
//
//	pdbconv [-o out.txt] file.pdb
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/ductape"
	"pdt/internal/tools/conv"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdbconv [-o out.txt] file.pdb")
		os.Exit(2)
	}
	db, err := ductape.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdbconv: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdbconv: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	conv.Convert(w, db)
}
