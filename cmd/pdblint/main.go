// pdblint runs the static-analysis passes of internal/analysis over a
// program database and reports the findings — the checker front end
// over PDB + DUCTAPE, through the shared corpus API (internal/corpus)
// the pdbd daemon also serves.
//
// Usage:
//
//	pdblint [-passes=a,b] [-format=text|json] [-serial] [-j N]
//	        [-template-bloat=N] [-lenient] [-quarantine dir] [-retry N]
//	        [-changed a.cc,b.h] [-findings-db dir]
//	        [-metrics file|-] [-trace] file.pdb
//	pdblint -list
//
// With -findings-db the run is incremental: each pass's findings are
// cached in the directory keyed by the content of its declared inputs,
// and passes whose inputs are unchanged splice their cached findings
// instead of re-running. The report is byte-identical to a full run.
// -changed names the files a diff touched; it shapes the affected-set
// metrics but never correctness (reuse is content-addressed).
//
// Exit codes: 0 clean (or info-only), 1 warnings, 2 errors, 3 usage or
// I/O failure, 4 clean findings but -lenient recovered past malformed
// input (findings codes win over 4; the pdb-recovery pass reports the
// recovered spans as warnings, so a recovering run normally exits 1).
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"pdt/internal/analysis"
	"pdt/internal/cliutil"
	"pdt/internal/corpus"
)

func main() {
	t := cliutil.New("pdblint",
		"pdblint [-passes=a,b] [-format=text|json] [-serial] [-j N] [-template-bloat=N] [-changed a.cc,b.h] [-findings-db dir] file.pdb")
	passNames := t.Flags.String("passes", "", "comma-separated pass names (default: all)")
	format := t.FormatFlag("text", "json")
	serial := t.Flags.Bool("serial", false, "run passes serially instead of in parallel")
	bloat := t.Flags.Int("template-bloat", analysis.DefaultTemplateBloatThreshold,
		"instantiation-count threshold for the template-bloat pass")
	list := t.Flags.Bool("list", false, "list the available passes and exit")
	cf := t.CorpusFlags()
	inc := t.IncrementalFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 0, 1)

	if *list {
		for _, p := range analysis.All() {
			fmt.Printf("%-16s %s\n", p.Name(), p.Doc())
		}
		return
	}
	if t.Flags.NArg() != 1 {
		t.Usage()
	}

	var names []string
	if *passNames != "" {
		for _, n := range strings.Split(*passNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	ctx := context.Background()
	c, err := corpus.Open(ctx, []string{t.Flags.Arg(0)}, cf.Options())
	if err != nil {
		t.Fatalf("%v", err)
	}

	res, err := c.Lint(ctx, corpus.LintRequest{
		Passes:        names,
		TemplateBloat: *bloat,
		Serial:        *serial,
		FindingsDB:    inc.Dir(),
		Changed:       inc.Changed(),
	})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := res.Write(os.Stdout, *format); err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(cf.Exit(res.ExitCode()))
}
