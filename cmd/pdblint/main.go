// pdblint runs the static-analysis passes of internal/analysis over a
// program database and reports the findings — the checker front end
// over PDB + DUCTAPE.
//
// Usage:
//
//	pdblint [-passes=a,b] [-format=text|json] [-serial] [-template-bloat=N] file.pdb
//	pdblint -list
//
// Exit codes: 0 clean (or info-only), 1 warnings, 2 errors, 3 usage or
// I/O failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdt/internal/analysis"
	"pdt/internal/ductape"
)

func main() {
	passNames := flag.String("passes", "", "comma-separated pass names (default: all)")
	format := flag.String("format", "text", "output format: text or json")
	serial := flag.Bool("serial", false, "run passes serially instead of in parallel")
	bloat := flag.Int("template-bloat", analysis.DefaultTemplateBloatThreshold,
		"instantiation-count threshold for the template-bloat pass")
	list := flag.Bool("list", false, "list the available passes and exit")
	flag.Parse()

	if *list {
		for _, p := range analysis.All() {
			fmt.Printf("%-16s %s\n", p.Name(), p.Doc())
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr,
			"usage: pdblint [-passes=a,b] [-format=text|json] [-serial] [-template-bloat=N] file.pdb")
		os.Exit(3)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "pdblint: unknown format %q\n", *format)
		os.Exit(3)
	}

	var names []string
	if *passNames != "" {
		for _, n := range strings.Split(*passNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	passes, err := analysis.Select(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: %v\n", err)
		os.Exit(3)
	}
	for _, p := range passes {
		if tb, ok := p.(*analysis.TemplateBloatPass); ok {
			tb.Threshold = *bloat
		}
	}

	db, err := ductape.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: %v\n", err)
		os.Exit(3)
	}

	opts := analysis.Options{}
	if *serial {
		opts.Workers = 1
	}
	diags := analysis.Run(db, passes, opts)

	if *format == "json" {
		err = analysis.WriteJSON(os.Stdout, diags)
	} else {
		err = analysis.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: %v\n", err)
		os.Exit(3)
	}
	os.Exit(analysis.ExitCode(diags))
}
