// pdbtree displays file inclusion, class hierarchy, and call graph
// trees of a program database (Table 2, Figure 5), through the shared
// corpus API (internal/corpus) the pdbd daemon also serves.
//
// Usage:
//
//	pdbtree [-files] [-classes] [-calls] [-j N] [-lenient] [-quarantine dir]
//	        [-retry N] [-metrics file|-] [-trace] file.pdb
//
// With no selection flags, all three trees are printed.
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/corpus"
)

func main() {
	t := cliutil.New("pdbtree", "pdbtree [-files] [-classes] [-calls] [-j N] [-metrics file|-] [-trace] file.pdb")
	files := t.Flags.Bool("files", false, "print the file inclusion tree")
	classes := t.Flags.Bool("classes", false, "print the class hierarchy")
	calls := t.Flags.Bool("calls", false, "print the static call graph")
	cf := t.CorpusFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)

	c, err := corpus.Open(context.Background(), []string{t.Flags.Arg(0)}, cf.Options())
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp := t.Obs().StartSpan("print")
	err = c.WriteTree(os.Stdout, corpus.TreeRequest{Files: *files, Classes: *classes, Calls: *calls})
	sp.End()
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(cf.Exit(cliutil.ExitOK))
}
