// pdbtree displays file inclusion, class hierarchy, and call graph
// trees of a program database (Table 2, Figure 5).
//
// Usage:
//
//	pdbtree [-files] [-classes] [-calls] file.pdb
//
// With no selection flags, all three trees are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/ductape"
	"pdt/internal/tools/tree"
)

func main() {
	files := flag.Bool("files", false, "print the file inclusion tree")
	classes := flag.Bool("classes", false, "print the class hierarchy")
	calls := flag.Bool("calls", false, "print the static call graph")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdbtree [-files] [-classes] [-calls] file.pdb")
		os.Exit(2)
	}
	db, err := ductape.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdbtree: %v\n", err)
		os.Exit(1)
	}
	all := !*files && !*classes && !*calls
	if all || *files {
		fmt.Println("=== file inclusion tree ===")
		tree.PrintFileTree(os.Stdout, db)
	}
	if all || *classes {
		fmt.Println("=== class hierarchy ===")
		tree.PrintClassHierarchy(os.Stdout, db)
		fmt.Println()
	}
	if all || *calls {
		fmt.Println("=== static call graph ===")
		tree.PrintCallGraph(os.Stdout, db)
	}
}
