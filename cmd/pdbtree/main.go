// pdbtree displays file inclusion, class hierarchy, and call graph
// trees of a program database (Table 2, Figure 5).
//
// Usage:
//
//	pdbtree [-files] [-classes] [-calls] [-j N] [-lenient] [-quarantine dir]
//	        [-retry N] [-metrics file|-] [-trace] file.pdb
//
// With no selection flags, all three trees are printed.
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"fmt"
	"os"

	"pdt/internal/cliutil"
	"pdt/internal/pdbio"
	"pdt/internal/tools/tree"
)

func main() {
	t := cliutil.New("pdbtree", "pdbtree [-files] [-classes] [-calls] [-j N] [-metrics file|-] [-trace] file.pdb")
	files := t.Flags.Bool("files", false, "print the file inclusion tree")
	classes := t.Flags.Bool("classes", false, "print the class hierarchy")
	calls := t.Flags.Bool("calls", false, "print the static call graph")
	workers := t.WorkersFlag()
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, 1)

	opts := append([]pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())},
		res.Options()...)
	db, err := pdbio.Load(context.Background(), t.Flags.Arg(0), opts...)
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp := t.Obs().StartSpan("print")
	all := !*files && !*classes && !*calls
	if all || *files {
		fmt.Println("=== file inclusion tree ===")
		tree.PrintFileTree(os.Stdout, db)
	}
	if all || *classes {
		fmt.Println("=== class hierarchy ===")
		tree.PrintClassHierarchy(os.Stdout, db)
		fmt.Println()
	}
	if all || *calls {
		fmt.Println("=== static call graph ===")
		tree.PrintCallGraph(os.Stdout, db)
	}
	sp.End()
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}
