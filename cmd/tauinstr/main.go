// tauinstr is the TAU instrumentor (§4.1): it compiles a C++ source
// file, builds its PDB, and rewrites the source files with TAU
// measurement macros inserted at every routine entry. The translated
// sources are written to an output directory.
//
// Usage:
//
//	tauinstr [-d outdir] [-I dir]... file.cpp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tau"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var includes stringList
	dir := flag.String("d", "tau-out", "output directory for instrumented sources")
	flag.Var(&includes, "I", "add an include search directory (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tauinstr [-d outdir] file.cpp")
		os.Exit(2)
	}
	opts := core.Options{IncludePaths: includes}
	fs := core.NewFileSet(opts)
	res, err := core.CompileFile(fs, flag.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tauinstr: %v\n", err)
		os.Exit(1)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%v\n", d)
	}
	if res.HasErrors() {
		os.Exit(1)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	edited, err := tau.Instrument(fs, db)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tauinstr: %v\n", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tauinstr: %v\n", err)
		os.Exit(1)
	}
	for name, content := range edited {
		// Atomic durable writes: a killed run leaves each translated
		// source either absent or complete, never torn.
		outPath := filepath.Join(*dir, filepath.Base(name))
		if err := durable.WriteFile(outPath, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tauinstr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tauinstr: instrumented %s -> %s\n", name, outPath)
	}
	if len(edited) == 0 {
		fmt.Println("tauinstr: nothing to instrument")
	}
}
