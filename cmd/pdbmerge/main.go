// pdbmerge merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (Table 2). Inputs are loaded concurrently and merged with a balanced
// tree reduction; the result is identical to a sequential
// left-to-right merge.
//
// Output is crash-consistent: the merged database is staged, fsynced,
// and atomically renamed over -o, so a killed run never leaves a torn
// file. With -checkpoint-dir every completed tree-reduction unit is
// journaled, and -resume makes a restarted run reuse the journal —
// byte-identical to an uninterrupted merge. A flock-based lock file
// next to -o keeps two concurrent runs from interleaving (the second
// exits 5 immediately).
//
// With -shards N the merge is partitioned across N supervised worker
// processes (internal/shardmerge): each worker produces a checkpointed
// partial database under the shared journal, a SIGKILLed or wedged
// worker has its shard reassigned to a fresh peer that resumes from
// the dead worker's checkpoints, and repeated failures degrade to the
// in-process merge — the output stays byte-identical to a
// single-process run in every case.
//
// Usage:
//
//	pdbmerge [-o out.pdb] [-format ascii|binary] [-j N] [-strict]
//	         [-lenient] [-quarantine dir] [-retry N]
//	         [-checkpoint-dir dir] [-resume]
//	         [-shards N] [-shard-heartbeat dur]
//	         [-metrics file|-] [-trace] a.pdb b.pdb ...
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input, 5 another pdbmerge holds
// the output lock.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"

	"pdt/internal/cliutil"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
	"pdt/internal/shardmerge"
)

func main() {
	t := cliutil.New("pdbmerge", "pdbmerge [-o out.pdb] [-format ascii|binary] [-j N] [-strict] [-lenient] [-quarantine dir] [-retry N] [-checkpoint-dir dir] [-resume] [-shards N] [-shard-heartbeat dur] [-metrics file|-] [-trace] a.pdb b.pdb ...")
	out := t.OutFlag()
	workers := t.WorkersFlag()
	strict := t.Flags.Bool("strict", false,
		"validate the referential integrity of every input database")
	format := t.Flags.String("format", "ascii",
		"output encoding: ascii or binary (inputs are auto-detected)")
	ckptDir := t.Flags.String("checkpoint-dir", "",
		"journal every completed merge unit into this directory (crash-safe, content-addressed)")
	resume := t.Flags.Bool("resume", false,
		"with -checkpoint-dir, reuse journaled units from an interrupted run instead of recomputing them")
	res := t.ResilienceFlags()
	shard := t.ShardFlagsGroup()
	t.ObsFlags()
	t.Parse(os.Args[1:], 0, -1)

	// Worker dispatch comes before everything else — locks, corpus
	// validation — because a shard worker answers only to its manifest
	// and its coordinator (which already holds the run's locks).
	if m := shard.WorkerManifest(); m != "" {
		t.Exit(shardmerge.WorkerMain(m, t.Stderr))
		return
	}
	if t.Flags.NArg() < 1 {
		t.Usage()
		return
	}
	if *resume && *ckptDir == "" {
		t.Fatalf("-resume requires -checkpoint-dir")
	}
	if *format != "ascii" && *format != "binary" {
		t.Fatalf("invalid -format=%s (want ascii or binary)", *format)
	}

	// One writer at a time: an flock next to the output (and on the
	// checkpoint journal) makes a second concurrent pdbmerge fail fast
	// with a distinct exit code instead of interleaving writes.
	for _, lockPath := range lockPaths(*out, *ckptDir) {
		lock, err := durable.AcquireLock(lockPath)
		if err != nil {
			if errors.Is(err, durable.ErrLocked) {
				fmt.Fprintf(t.Stderr, "pdbmerge: %v (another pdbmerge is writing here; retry when it exits)\n", err)
				t.Exit(cliutil.ExitLocked)
				return
			}
			t.Fatalf("%v", err)
			return
		}
		defer lock.Release()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if shard.Enabled() {
		err := runSharded(ctx, t, shard, *out, *ckptDir, *resume, *workers, *format, *strict, res)
		if err != nil {
			t.Fatalf("%v", err)
		}
		t.FlushObs()
		t.Exit(res.Exit(cliutil.ExitOK))
		return
	}

	opts := []pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())}
	if *format == "binary" {
		opts = append(opts, pdbio.WithFormat(pdbio.FormatBinary))
	}
	if *strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	if *ckptDir != "" {
		opts = append(opts, pdbio.WithCheckpoint(*ckptDir, *resume))
	}
	opts = append(opts, res.Options()...)

	var err error
	if *out != "" {
		// File output goes through the fully durable path: staged,
		// fsynced, renamed, directory-fsynced.
		err = pdbio.MergeToFile(ctx, *out, t.Flags.Args(), opts...)
	} else {
		err = t.WithOutput("", func(w io.Writer) error {
			return pdbio.MergeFiles(ctx, w, t.Flags.Args(), opts...)
		})
	}
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}

// runSharded drives the multi-process merge: the coordinator re-execs
// this binary once per shard (-worker-shard), supervises the workers'
// lease heartbeats, reassigns the shards of dead or wedged workers,
// and k-way merges the partials. The shard state lives in the
// -checkpoint-dir when given (making the whole run resumable with
// -resume), else in a throwaway temp directory.
func runSharded(ctx context.Context, t *cliutil.Tool, shard *cliutil.ShardFlags,
	out, ckptDir string, resume bool, workers int, format string,
	strict bool, res *cliutil.Resilience) error {
	dir := ckptDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pdbmerge-shards-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving worker binary: %w", err)
	}
	metrics := t.Obs()
	if metrics == nil {
		// The sharded path always needs a registry: recoveries inside
		// worker processes only travel back as counters.
		metrics = obs.New(t.Name)
	}
	o := shardmerge.Options{
		Shards:       shard.Shards(),
		Dir:          dir,
		Resume:       resume,
		Heartbeat:    shard.Heartbeat(),
		MergeWorkers: workers,
		WorkerArgv:   []string{exe, "-worker-shard"},
		WorkerStderr: t.Stderr,
		Strict:       strict,
		Lenient:      res.Lenient(),
		Quarantine:   res.Quarantine(),
		Retries:      res.Retries(),
		RetryBackoff: res.RetryBackoff(),
		Metrics:      metrics,
	}
	if format == "binary" {
		o.Format = pdbio.FormatBinary
	}
	if out != "" {
		err = shardmerge.MergeToFile(ctx, out, t.Flags.Args(), o)
	} else {
		err = t.WithOutput("", func(w io.Writer) error {
			return shardmerge.MergeFiles(ctx, w, t.Flags.Args(), o)
		})
	}
	if err != nil {
		return err
	}
	// Worker-side lenient recoveries come back as the shard.recovered
	// counter; fold them into the shared stats so the exit code reports
	// "completed with recoveries" exactly like a single-process run.
	if n := metrics.Snapshot().Counters["shard.recovered"]; n > 0 {
		res.Stats().Recovered.Add(n)
	}
	return nil
}

// lockPaths lists the lock files a run must hold: one guarding the
// output file, one guarding the checkpoint journal. Stdout output
// needs no lock.
func lockPaths(out, ckptDir string) []string {
	var paths []string
	if out != "" {
		paths = append(paths, out+".lock")
	}
	if ckptDir != "" {
		paths = append(paths, ckptDir+".lock")
	}
	return paths
}
