// pdbmerge merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (Table 2). Inputs are loaded concurrently and merged with a balanced
// tree reduction; the result is identical to a sequential
// left-to-right merge.
//
// Usage:
//
//	pdbmerge [-o out.pdb] [-j N] [-strict] [-lenient] [-quarantine dir]
//	         [-retry N] [-metrics file|-] [-trace] a.pdb b.pdb ...
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input.
package main

import (
	"context"
	"io"
	"os"
	"os/signal"

	"pdt/internal/cliutil"
	"pdt/internal/pdbio"
)

func main() {
	t := cliutil.New("pdbmerge", "pdbmerge [-o out.pdb] [-j N] [-strict] [-lenient] [-quarantine dir] [-retry N] [-metrics file|-] [-trace] a.pdb b.pdb ...")
	out := t.OutFlag()
	workers := t.WorkersFlag()
	strict := t.Flags.Bool("strict", false,
		"validate the referential integrity of every input database")
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, -1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())}
	if *strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	opts = append(opts, res.Options()...)
	err := t.WithOutput(*out, func(w io.Writer) error {
		return pdbio.MergeFiles(ctx, w, t.Flags.Args(), opts...)
	})
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}
