// pdbmerge merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (Table 2).
//
// Usage:
//
//	pdbmerge [-o out.pdb] a.pdb b.pdb ...
package main

import (
	"flag"
	"fmt"
	"os"

	"pdt/internal/tools/merge"
)

func main() {
	out := flag.String("o", "", "output PDB file (default: stdout)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pdbmerge [-o out.pdb] a.pdb b.pdb ...")
		os.Exit(2)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdbmerge: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := merge.Files(w, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
