// pdbmerge merges PDB files from separate compilations into one PDB
// file, eliminating duplicate template instantiations in the process
// (Table 2). Inputs are loaded concurrently and merged with a balanced
// tree reduction; the result is identical to a sequential
// left-to-right merge.
//
// Output is crash-consistent: the merged database is staged, fsynced,
// and atomically renamed over -o, so a killed run never leaves a torn
// file. With -checkpoint-dir every completed tree-reduction unit is
// journaled, and -resume makes a restarted run reuse the journal —
// byte-identical to an uninterrupted merge. A flock-based lock file
// next to -o keeps two concurrent runs from interleaving (the second
// exits 5 immediately).
//
// Usage:
//
//	pdbmerge [-o out.pdb] [-format ascii|binary] [-j N] [-strict]
//	         [-lenient] [-quarantine dir] [-retry N]
//	         [-checkpoint-dir dir] [-resume]
//	         [-metrics file|-] [-trace] a.pdb b.pdb ...
//
// Exit codes: 0 success, 3 usage or I/O failure, 4 completed but
// -lenient recovered past malformed input, 5 another pdbmerge holds
// the output lock.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"

	"pdt/internal/cliutil"
	"pdt/internal/durable"
	"pdt/internal/pdbio"
)

func main() {
	t := cliutil.New("pdbmerge", "pdbmerge [-o out.pdb] [-format ascii|binary] [-j N] [-strict] [-lenient] [-quarantine dir] [-retry N] [-checkpoint-dir dir] [-resume] [-metrics file|-] [-trace] a.pdb b.pdb ...")
	out := t.OutFlag()
	workers := t.WorkersFlag()
	strict := t.Flags.Bool("strict", false,
		"validate the referential integrity of every input database")
	format := t.Flags.String("format", "ascii",
		"output encoding: ascii or binary (inputs are auto-detected)")
	ckptDir := t.Flags.String("checkpoint-dir", "",
		"journal every completed merge unit into this directory (crash-safe, content-addressed)")
	resume := t.Flags.Bool("resume", false,
		"with -checkpoint-dir, reuse journaled units from an interrupted run instead of recomputing them")
	res := t.ResilienceFlags()
	t.ObsFlags()
	t.Parse(os.Args[1:], 1, -1)
	if *resume && *ckptDir == "" {
		t.Fatalf("-resume requires -checkpoint-dir")
	}
	if *format != "ascii" && *format != "binary" {
		t.Fatalf("invalid -format=%s (want ascii or binary)", *format)
	}

	// One writer at a time: an flock next to the output (and on the
	// checkpoint journal) makes a second concurrent pdbmerge fail fast
	// with a distinct exit code instead of interleaving writes.
	for _, lockPath := range lockPaths(*out, *ckptDir) {
		lock, err := durable.AcquireLock(lockPath)
		if err != nil {
			if errors.Is(err, durable.ErrLocked) {
				fmt.Fprintf(t.Stderr, "pdbmerge: %v (another pdbmerge is writing here; retry when it exits)\n", err)
				t.Exit(cliutil.ExitLocked)
				return
			}
			t.Fatalf("%v", err)
			return
		}
		defer lock.Release()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []pdbio.Option{pdbio.WithWorkers(*workers), pdbio.WithMetrics(t.Obs())}
	if *format == "binary" {
		opts = append(opts, pdbio.WithFormat(pdbio.FormatBinary))
	}
	if *strict {
		opts = append(opts, pdbio.WithStrictValidation())
	}
	if *ckptDir != "" {
		opts = append(opts, pdbio.WithCheckpoint(*ckptDir, *resume))
	}
	opts = append(opts, res.Options()...)

	var err error
	if *out != "" {
		// File output goes through the fully durable path: staged,
		// fsynced, renamed, directory-fsynced.
		err = pdbio.MergeToFile(ctx, *out, t.Flags.Args(), opts...)
	} else {
		err = t.WithOutput("", func(w io.Writer) error {
			return pdbio.MergeFiles(ctx, w, t.Flags.Args(), opts...)
		})
	}
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.FlushObs()
	t.Exit(res.Exit(cliutil.ExitOK))
}

// lockPaths lists the lock files a run must hold: one guarding the
// output file, one guarding the checkpoint journal. Stdout output
// needs no lock.
func lockPaths(out, ckptDir string) []string {
	var paths []string
	if out != "" {
		paths = append(paths, out+".lock")
	}
	if ckptDir != "" {
		paths = append(paths, ckptDir+".lock")
	}
	return paths
}
