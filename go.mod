module pdt

go 1.22
