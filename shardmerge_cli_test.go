// CLI acceptance tests for pdbmerge -shards: the multi-process merge
// must be byte-identical to the single-process merge, surface its
// supervision counters through -metrics, and run as worker processes
// spawned from the installed binary itself.
package pdt_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/workload"
)

func genShardCorpus(t *testing.T, n int) []string {
	t.Helper()
	paths, err := workload.GenPDBCorpus(filepath.Join(t.TempDir(), "corpus"), n, 3, 2)
	if err != nil {
		t.Fatalf("generating corpus: %v", err)
	}
	return paths
}

func TestCLIShardedMergeMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	inputs := genShardCorpus(t, 13)
	tmp := t.TempDir()

	for _, format := range []string{"ascii", "binary"} {
		single := filepath.Join(tmp, "single-"+format+".pdb")
		if _, stderr, err := runTool(t, "pdbmerge",
			append([]string{"-o", single, "-format", format}, inputs...)...); err != nil {
			t.Fatalf("single-process merge (%s): %v\n%s", format, err, stderr)
		}
		sharded := filepath.Join(tmp, "sharded-"+format+".pdb")
		if _, stderr, err := runTool(t, "pdbmerge",
			append([]string{"-o", sharded, "-format", format, "-shards", "4"}, inputs...)...); err != nil {
			t.Fatalf("sharded merge (%s): %v\n%s", format, err, stderr)
		}
		want, err := os.ReadFile(single)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: sharded output differs from single-process (%d vs %d bytes)",
				format, len(got), len(want))
		}
	}
}

func TestCLIShardedMergeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	inputs := genShardCorpus(t, 9)
	tmp := t.TempDir()
	out := filepath.Join(tmp, "merged.pdb")
	metricsPath := filepath.Join(tmp, "metrics.json")

	_, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-o", out, "-shards", "3", "-metrics", metricsPath}, inputs...)...)
	if err != nil {
		t.Fatalf("sharded merge: %v\n%s", err, stderr)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, data)
	}
	if got := snap.Counters["shard.completed"]; got != 3 {
		t.Errorf("shard.completed = %d, want 3\n%s", got, data)
	}
	if got := snap.Counters["shard.fallback"]; got != 0 {
		t.Errorf("shard.fallback = %d, want 0\n%s", got, data)
	}
}

func TestCLIShardedMergeResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	inputs := genShardCorpus(t, 9)
	tmp := t.TempDir()
	ckpt := filepath.Join(tmp, "journal")

	first := filepath.Join(tmp, "first.pdb")
	if _, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-o", first, "-shards", "2", "-checkpoint-dir", ckpt}, inputs...)...); err != nil {
		t.Fatalf("first run: %v\n%s", err, stderr)
	}
	// A -resume rerun over the same journal adopts the completed shard
	// results instead of respawning workers, and stays byte-identical.
	second := filepath.Join(tmp, "second.pdb")
	metricsPath := filepath.Join(tmp, "metrics.json")
	_, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-o", second, "-shards", "2", "-checkpoint-dir", ckpt,
			"-resume", "-metrics", metricsPath}, inputs...)...)
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, stderr)
	}
	want, _ := os.ReadFile(first)
	got, _ := os.ReadFile(second)
	if string(got) != string(want) {
		t.Errorf("resumed output differs (%d vs %d bytes)", len(got), len(want))
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	if !strings.Contains(string(data), `"checkpoint.reused"`) {
		t.Errorf("resume metrics missing checkpoint.reused:\n%s", data)
	}
}

func TestCLIShardWorkerRejectsBadManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	_, stderr, err := runTool(t, "pdbmerge", "-worker-shard", filepath.Join(t.TempDir(), "nope.json"))
	if err == nil {
		t.Fatalf("worker over missing manifest succeeded; stderr:\n%s", stderr)
	}
}
