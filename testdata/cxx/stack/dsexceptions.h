#ifndef DSEXCEPTIONS_H
#define DSEXCEPTIONS_H
class Overflow { };
class Underflow { };
#endif
