#ifndef STACK_AR_H
#define STACK_AR_H
#include <vector>
#include "dsexceptions.h"

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    bool isFull() const;
    const Object & top() const;
    void makeEmpty();
    void pop();
    void push(const Object & x);
    Object topAndPop();
private:
    vector<Object> theArray;
    int topOfStack;
};
#include "StackAr.cpp"
#endif
