template <class Object>
Stack<Object>::Stack(int capacity) : theArray(capacity), topOfStack(-1) { }

template <class Object>
bool Stack<Object>::isEmpty() const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == theArray.size() - 1;
}

template <class Object>
const Object & Stack<Object>::top() const {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack);
}

template <class Object>
void Stack<Object>::makeEmpty() {
    topOfStack = -1;
}

template <class Object>
void Stack<Object>::pop() {
    if (isEmpty())
        throw Underflow();
    topOfStack--;
}

template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}

template <class Object>
Object Stack<Object>::topAndPop() {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack--);
}
