#include "StackAr.h"
#include <iostream>

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        cout << s.topAndPop() << endl;
    return 0;
}
