#include "mathutil.h"
#include <iostream>

// Sums the first cubes via helpers defined in ../include/mathutil.h:
// running this without -I ../include fails to resolve the header.
int main() {
    int total = 0;
    for (int i = 1; i <= 3; i++)
        total = accumulate(total, i);
    cout << "total " << total << endl;
    return 0;
}
