#ifndef MATHUTIL_H
#define MATHUTIL_H
// Helpers that live outside the main file's directory on purpose:
// taurun only finds this header through -I include (the include-dir
// regression fixture).
int cube(int x) {
    return x * x * x;
}
int accumulate(int total, int x) {
    return total + cube(x);
}
#endif
