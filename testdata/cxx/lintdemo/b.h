#ifndef B_H
#define B_H
#include "a.h"

class Beta {
public:
    Beta() : id(1) { }
    int tag() const { return id; }
private:
    int id;
};
#endif
