#include "a.h"

// Conflicts with two.cpp: same name and parameters, different return
// type — an ODR violation across translation units.
int helper(int x) { return x + 1; }

int oneEntry() {
    Alpha a;
    return helper(a.tag());
}
