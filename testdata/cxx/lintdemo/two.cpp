// Conflicts with one.cpp's helper(int): different return type.
double helper(int x) { return x * 0.5; }

double twoEntry() { return helper(2); }
