#ifndef UNUSED_H
#define UNUSED_H

class Widget {
public:
    Widget() : w(0) { }
    int weight() const { return w; }
private:
    int w;
};
#endif
