#ifndef SHAPES_H
#define SHAPES_H

// Polymorphic base with a non-virtual destructor.
class Shape {
public:
    Shape() { }
    ~Shape() { }
    virtual double area() const { return 0.0; }
    virtual void scale(double f) { }
};

class Circle : public Shape {
public:
    Circle() : r(1.0) { }
    double area() const { return r * r * 3.14159; }
    // Different arity: hides Shape::scale(double) instead of
    // overriding it.
    void scale(int num, int den) { r = r * num / den; }
private:
    double r;
};
#endif
