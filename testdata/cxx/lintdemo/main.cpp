#include "a.h"
#include "shapes.h"
#include "grid.h"

int oneEntry();
double twoEntry();

// Never called from main: a dead routine.
int deadHelper(int x) { return x * 7; }

int gridSum() {
    Grid<int, 1> g1;
    Grid<int, 2> g2;
    Grid<int, 3> g3;
    Grid<int, 4> g4;
    Grid<int, 5> g5;
    Grid<int, 6> g6;
    Grid<int, 7> g7;
    Grid<int, 8> g8;
    Grid<int, 9> g9;
    Grid<int, 10> g10;
    return g1.cap() + g2.cap() + g3.cap() + g4.cap() + g5.cap() +
           g6.cap() + g7.cap() + g8.cap() + g9.cap() + g10.cap();
}

int main() {
    Alpha a;
    Circle c;
    c.scale(3, 2);
    double total = c.area() + twoEntry();
    int n = a.tag() + oneEntry() + gridSum();
    if (total > 0.0) {
        n = n + 1;
    }
    return n;
}
