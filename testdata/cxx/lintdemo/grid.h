#ifndef GRID_H
#define GRID_H

template <class T, int N>
class Grid {
public:
    Grid() : used(0) { }
    int cap() const { return N; }
private:
    int used;
};
#endif
