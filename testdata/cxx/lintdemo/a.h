#ifndef A_H
#define A_H
// Includes b.h (which includes a.h back: an include cycle) and
// unused.h (whose declarations nothing here touches).
#include "b.h"
#include "unused.h"

class Alpha {
public:
    Alpha() : id(0) { }
    int tag() const { return id; }
private:
    int id;
};
#endif
