#ifndef KRYLOV_H
#define KRYLOV_H
#include "pooma.h"

// Conjugate gradient on the 1-D Laplacian; returns iteration count.
template <class T>
int conjugateGradient(const Vector<T> & b, Vector<T> & x, int maxIter, T tol) {
    int n = b.size();
    Vector<T> r(n);
    Vector<T> p(n);
    Vector<T> Ap(n);
    applyLaplacian(x, Ap);
    for (int i = 0; i < n; i++)
        r.set(i, b.get(i) - Ap.get(i));
    for (int i = 0; i < n; i++)
        p.set(i, r.get(i));
    T rr = dot(r, r);
    int iter = 0;
    while (iter < maxIter && rr > tol) {
        applyLaplacian(p, Ap);
        T alpha = rr / dot(p, Ap);
        axpy(alpha, p, x);
        axpy(-alpha, Ap, r);
        T rrNew = dot(r, r);
        T beta = rrNew / rr;
        updateDirection(r, beta, p);
        rr = rrNew;
        iter++;
    }
    return iter;
}
#endif
