#ifndef POOMA_MINI_H
#define POOMA_MINI_H
#include <cmath>

// A templated field vector with heap storage.
template <class T>
class Vector {
public:
    explicit Vector(int n) : n_(n), data_(new T[n]) {
        for (int i = 0; i < n_; i++)
            data_[i] = 0;
    }
    Vector(const Vector & o) : n_(o.n_), data_(new T[o.n_]) {
        for (int i = 0; i < n_; i++)
            data_[i] = o.data_[i];
    }
    ~Vector() { delete[] data_; }
    Vector & operator=(const Vector & o) {
        if (this != &o) {
            delete[] data_;
            n_ = o.n_;
            data_ = new T[n_];
            for (int i = 0; i < n_; i++)
                data_[i] = o.data_[i];
        }
        return *this;
    }
    int size() const { return n_; }
    T & operator[](int i) { return data_[i]; }
    T get(int i) const { return data_[i]; }
    void set(int i, const T & v) { data_[i] = v; }
    void fill(const T & v) {
        for (int i = 0; i < n_; i++)
            data_[i] = v;
    }
private:
    int n_;
    T *data_;
};

// dot product kernel.
template <class T>
T dot(const Vector<T> & a, const Vector<T> & b) {
    T s = 0;
    for (int i = 0; i < a.size(); i++)
        s += a.get(i) * b.get(i);
    return s;
}

// y += alpha * x
template <class T>
void axpy(T alpha, const Vector<T> & x, Vector<T> & y) {
    for (int i = 0; i < y.size(); i++)
        y.set(i, y.get(i) + alpha * x.get(i));
}

// p = r + beta * p
template <class T>
void updateDirection(const Vector<T> & r, T beta, Vector<T> & p) {
    for (int i = 0; i < p.size(); i++)
        p.set(i, r.get(i) + beta * p.get(i));
}

// y = A x for the 1-D Laplacian stencil A = tridiag(-1, 2, -1).
template <class T>
void applyLaplacian(const Vector<T> & x, Vector<T> & y) {
    int n = x.size();
    for (int i = 0; i < n; i++) {
        T v = 2 * x.get(i);
        if (i > 0)
            v -= x.get(i - 1);
        if (i < n - 1)
            v -= x.get(i + 1);
        y.set(i, v);
    }
}

// Euclidean norm.
template <class T>
T norm2(const Vector<T> & v) {
    return sqrt(dot(v, v));
}
#endif
