#include "krylov.h"
#include <iostream>

int main() {
    const int n = 32;
    Vector<double> b(n);
    Vector<double> x(n);
    b.fill(1.0);
    int iters = conjugateGradient(b, x, 200, 1e-10);
    Vector<double> check(n);
    applyLaplacian(x, check);
    double residual = 0;
    for (int i = 0; i < n; i++) {
        double d = check.get(i) - b.get(i);
        residual += d * d;
    }
    cout << "iterations " << iters << endl;
    cout << "converged " << (residual < 1e-6) << endl;
    return 0;
}
