// Benchmark snapshot for the pdbd daemon's result cache.
//
// TestBenchSnapshotPdbd is gated on PDT_BENCH_SNAPSHOT_PDBD: when the
// variable names an output path, the test boots a daemon over the
// generated many-unit corpus, times cold (computed) versus warm
// (cached) requests for the expensive endpoints, and writes the
// measurements as JSON. CI runs it on every push and uploads the
// artifact; the committed BENCH_pdbd.json is the documented baseline.
// The acceptance contract is asserted here: a warm cached query must
// show cache hits and be at least 10x faster than its cold compute.
package pdt_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdt/internal/obs"
	"pdt/internal/pdbd"
)

func TestBenchSnapshotPdbd(t *testing.T) {
	out := os.Getenv("PDT_BENCH_SNAPSHOT_PDBD")
	if out == "" {
		t.Skip("set PDT_BENCH_SNAPSHOT_PDBD=<path> to write the benchmark snapshot")
	}

	db := benchCorpus(t, 48, 4, 8, 8)
	path := filepath.Join(t.TempDir(), "bench.pdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	m := obs.New("pdbd")
	srv, err := pdbd.New(context.Background(), pdbd.Config{
		Paths:    []string{path},
		CacheDir: filepath.Join(t.TempDir(), "cache"),
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetch := func(url string) (string, time.Duration) {
		start := time.Now()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		elapsed := time.Since(start)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, %v\n%s", url, resp.StatusCode, err, body)
		}
		return resp.Header.Get("X-Pdbd-Cache"), elapsed
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	endpoints := map[string]string{
		"lint":     "/v1/lint",
		"deps":     "/v1/query/deps?node=file:unit0.cpp",
		"affected": "/v1/query/affected?file=file:unit0.cpp&format=json",
		"tree":     "/v1/tree",
	}
	snap := map[string]any{
		"generated_by": "TestBenchSnapshotPdbd",
		"corpus":       map[string]int{"layer_depth": 48, "layer_width": 4, "layer_methods": 8, "merge_units": 8},
	}
	for name, url := range endpoints {
		tier, cold := fetch(url)
		if tier != "miss" {
			t.Errorf("%s: first request tier = %q, want miss", name, tier)
		}
		// Fastest of five warm requests, as the least noisy estimator.
		var warm time.Duration
		for i := 0; i < 5; i++ {
			tier, d := fetch(url)
			if tier != "mem" {
				t.Errorf("%s: warm request tier = %q, want mem", name, tier)
			}
			if i == 0 || d < warm {
				warm = d
			}
		}
		speedup := float64(cold) / float64(warm)
		snap[name+"_cold_ms"] = ms(cold)
		snap[name+"_warm_ms"] = ms(warm)
		snap[name+"_speedup"] = speedup
		t.Logf("%s: cold %.2fms warm %.3fms (%.0fx)", name, ms(cold), ms(warm), speedup)
		if name == "lint" && speedup < 10 {
			t.Errorf("%s: warm/cold speedup %.1fx, want >= 10x", name, speedup)
		}
	}

	counters := m.Snapshot().Counters
	snap["cache_mem_hits"] = counters["cache.mem.hits"]
	snap["cache_mem_misses"] = counters["cache.mem.misses"]
	snap["cache_coalesced"] = counters["cache.coalesced"]
	if counters["cache.mem.hits"] == 0 {
		t.Error("warm requests recorded no cache hits")
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
