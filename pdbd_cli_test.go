// Byte-identity contract between the pdbd daemon and the CLIs: every
// daemon endpoint response body must equal the corresponding
// command-line invocation's standard output, byte for byte, over the
// merged two-program workload. Both sides are thin shells over
// internal/corpus, so this pins that neither grows a private renderer.
package pdt_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/obs"
	"pdt/internal/pdbd"
	"pdt/internal/workload"
)

// workloadPDB compiles and merges the Krylov + stack workload into a
// saved database file.
func workloadPDB(t *testing.T) string {
	t.Helper()
	dbKrylov := compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp")
	dbStack := compileFilesTU(t, workload.StackFiles(), "TestStackAr.cpp")
	merged := ductape.Merge(dbKrylov, dbStack)
	path := filepath.Join(t.TempDir(), "workload.pdb")
	if err := merged.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPdbdMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	path := workloadPDB(t)
	srv, err := pdbd.New(context.Background(), pdbd.Config{
		Paths:   []string{path},
		Metrics: obs.New("pdbd"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fetch := func(t *testing.T, url string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d\n%s", url, resp.StatusCode, body)
		}
		return string(body)
	}

	cases := []struct {
		name string
		url  string
		tool string
		args []string
	}{
		{"nodes", "/v1/query/nodes", "pdbquery", []string{path, "nodes"}},
		{"lookup", "/v1/lookup?node=file:krylov.cpp&node=file:pooma.h", "pdbquery",
			[]string{path, "lookup", "file:krylov.cpp", "file:pooma.h"}},
		{"deps_text", "/v1/query/deps?node=file:krylov.cpp", "pdbquery",
			[]string{path, "deps", "file:krylov.cpp"}},
		{"deps_json", "/v1/query/deps?node=file:krylov.cpp&format=json", "pdbquery",
			[]string{"-format=json", path, "deps", "file:krylov.cpp"}},
		{"deps_depth1", "/v1/query/deps?node=file:krylov.cpp&depth=1", "pdbquery",
			[]string{"-depth", "1", path, "deps", "file:krylov.cpp"}},
		{"rdeps", "/v1/query/rdeps?node=pooma.h", "pdbquery",
			[]string{path, "revdeps", "pooma.h"}},
		{"somepath_json", "/v1/query/somepath?from=file:krylov.cpp&to=file:pooma.h&format=json", "pdbquery",
			[]string{"-format=json", path, "somepath", "file:krylov.cpp", "file:pooma.h"}},
		{"reaches", "/v1/query/reaches?from=file:krylov.cpp&to=file:pooma.h", "pdbquery",
			[]string{path, "reaches", "file:krylov.cpp", "file:pooma.h"}},
		{"whatinputs", "/v1/query/whatinputs?file=StackAr.h", "pdbquery",
			[]string{path, "whatinputs", "StackAr.h"}},
		{"affected_json", "/v1/query/affected?file=StackAr.h&format=json", "pdbquery",
			[]string{"-format=json", path, "affected", "StackAr.h"}},
		{"lint_text", "/v1/lint", "pdblint", []string{path}},
		{"lint_json", "/v1/lint?format=json", "pdblint", []string{"-format=json", path}},
		{"lint_passes", "/v1/lint?passes=dead-routine,odr-duplicate", "pdblint",
			[]string{"-passes=dead-routine,odr-duplicate", path}},
		{"tree", "/v1/tree", "pdbtree", []string{path}},
		{"tree_calls", "/v1/tree?calls", "pdbtree", []string{"-calls", path}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			daemon := fetch(t, c.url)
			cli, stderr, err := runTool(t, c.tool, c.args...)
			if err != nil {
				// pdblint exits with the findings code; that is not a
				// failure for body comparison.
				if c.tool != "pdblint" {
					t.Fatalf("%s %v: %v\n%s", c.tool, c.args, err, stderr)
				}
			}
			if daemon != cli {
				t.Errorf("daemon %s and %s %v disagree\n--- daemon ---\n%s--- cli ---\n%s",
					c.url, c.tool, c.args, daemon, cli)
			}
		})
	}

	// HTML: every page the daemon serves must equal the file pdbhtml
	// writes under the same name (source listings disabled on both
	// sides — the workload's sources are not on disk).
	t.Run("html", func(t *testing.T) {
		outDir := filepath.Join(t.TempDir(), "html")
		if _, stderr, err := runTool(t, "pdbhtml", "-nosrc", "-d", outDir, path); err != nil {
			t.Fatalf("pdbhtml: %v\n%s", err, stderr)
		}
		for _, page := range []string{"index.html", "classes.html", "routines.html", "templates.html", "files.html"} {
			daemon := fetch(t, "/v1/html/"+page)
			disk, err := os.ReadFile(filepath.Join(outDir, page))
			if err != nil {
				t.Fatal(err)
			}
			if daemon != string(disk) {
				t.Errorf("daemon /v1/html/%s differs from the pdbhtml file", page)
			}
		}
	})
}
